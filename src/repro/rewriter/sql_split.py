"""Plan splitting and SQL generation (the Fig. 22 step).

"The simplified algebraic plan can then be input to a module which splits
the plan into two components: one part consisting of restructuring and
grouping operators which is executed at the mediator.  The second part
... consists of the initial getD, select, and join operators and is
translated into a query in the appropriate query language for sending to
the sources, and is represented at the mediator by a source access
operator of the appropriate type."

This module finds, top-down, the maximal subtrees built from
``mksrc``/``getD``/``select``/``join``/``semijoin``/``orderBy`` over
relational wrapper documents of a single server, compiles each into one
SQL statement (aliases ``c1, o1, c2, ...`` in the paper's style; a
semijoin becomes a self-join with SELECT DISTINCT), and replaces it by a
``rQ`` operator whose map exports exactly the variables live above the
split point.  When a ``gBy`` consumes the subtree's output, the SQL gains
an ORDER BY on the group variables' key columns (then the other exported
tuples' keys) so the engine can run the presorted stateless gBy of
Table 1 — this is Fig. 22's ``ORDER BY c1.id, o1.orid``.

DISTINCT deviation from the paper: Fig. 22's published SQL encodes the
semijoin as a plain self-join, which duplicates rows when several ``o2``
orders match; we emit SELECT DISTINCT to preserve the set semantics of
the algebra (recorded in EXPERIMENTS.md).

Cost-based refinements (``cost=True`` plus fresh ``ANALYZE`` statistics
on every referenced table — without both, the emitted SQL is
byte-identical to the seed's):

* the FROM clause lists tables smallest-first by analyzed row count, so
  sources with purely syntactic planners start from the cheapest scan;
* a semijoin's DISTINCT is dropped when the probe side provably cannot
  duplicate rows — a single probe table matched through a full
  primary-key equality (schema-provable, hence safe even for cached
  plans that outlive the statistics).
"""

from __future__ import annotations

from repro.errors import SourceError, UnknownSourceError
from repro.xmltree.paths import Step
from repro.algebra import operators as ops
from repro.algebra.conditions import KEY, OID, VALUE
from repro.rewriter.context import RewriteContext


class _SqlModel:
    """An under-construction SQL statement for one source subtree."""

    def __init__(self, server):
        self.server = server
        self.tables = []       # (table_name, alias, element_label, schema)
        self.env = {}          # var -> ("tuple", alias_idx) | ("col", alias_idx, col, kind)
        self.where = []        # SQL text fragments
        self.order = []        # SQL column refs
        self.distinct = False
        #: True when some semijoin in this model can actually duplicate
        #: rows; DISTINCT then survives even under the cost optimizer.
        self.distinct_required = False
        self.internal_only = set()  # vars not exportable (semijoin probe side)

    def alias_of(self, index):
        return self.tables[index][1]

    def merge(self, other):
        offset = len(self.tables)
        self.tables.extend(other.tables)
        for var, binding in other.env.items():
            if binding[0] == "tuple":
                self.env[var] = ("tuple", binding[1] + offset)
            else:
                self.env[var] = (
                    "col", binding[1] + offset, binding[2], binding[3]
                )
        self.where.extend(other.where)
        self.order.extend(other.order)
        self.distinct = self.distinct or other.distinct
        self.distinct_required = (
            self.distinct_required or other.distinct_required
        )
        self.internal_only |= other.internal_only
        return offset


class _AliasCounter:
    def __init__(self):
        self._counts = {}

    def next_alias(self, table_name):
        count = self._counts.get(table_name, 0) + 1
        self._counts[table_name] = count
        return "{}{}".format(table_name[0], count)


def push_to_sources(plan, catalog, group_hint=None, cost=False):
    """Replace maximal relational subtrees of ``plan`` by ``rQ`` leaves.

    ``group_hint`` optionally forces an ORDER BY on the given variables
    even without an enclosing ``gBy`` in ``plan``.  ``cost`` enables
    the statistics-gated SQL refinements (FROM ordering, provably
    redundant DISTINCT elision); they only engage when every referenced
    table carries fresh ``ANALYZE`` statistics.
    """
    ctx = RewriteContext(plan)
    return _transform(plan, plan, ctx, catalog,
                      tuple(group_hint or ()), cost, top=True)


def _transform(root, node, ctx, catalog, pending_groups, cost, top=False):
    if isinstance(node, ops.GroupBy):
        pending_groups = tuple(node.group_vars)
    compiled = _try_compile(node, catalog, _AliasCounter())
    if compiled is not None and _worth_pushing(node):
        return _build_relquery(
            root, node, compiled, ctx, pending_groups, catalog, cost
        )
    new_children = tuple(
        _transform(root, child, ctx, catalog, pending_groups, cost)
        for child in node.children
    )
    result = node
    if any(n is not o for n, o in zip(new_children, node.children)):
        result = node.with_children(new_children)
    if isinstance(result, ops.Apply):
        new_nested = _transform(
            root, node.plan, ctx, catalog, pending_groups, cost
        )
        if new_nested is not node.plan:
            result = result.with_nested_plan(new_nested)
    return result


def _worth_pushing(node):
    """A bare ``mksrc`` already streams; push only real query work."""
    return not (isinstance(node, ops.MkSrc) and node.input is None)


# -- compilation -----------------------------------------------------------------


def _try_compile(node, catalog, aliases):
    """A :class:`_SqlModel` for ``node``'s subtree, or ``None``."""
    if isinstance(node, ops.MkSrc):
        return _compile_mksrc(node, catalog, aliases)
    if isinstance(node, ops.GetD):
        return _compile_getd(node, catalog, aliases)
    if isinstance(node, ops.Select):
        return _compile_select(node, catalog, aliases)
    if isinstance(node, ops.Join):
        return _compile_join(node, catalog, aliases, semi=None)
    if isinstance(node, ops.SemiJoin):
        return _compile_join(node, catalog, aliases, semi=node.keep)
    if isinstance(node, ops.OrderBy):
        return _compile_orderby(node, catalog, aliases)
    return None


def _compile_mksrc(node, catalog, aliases):
    if node.input is not None:
        return None
    try:
        source = catalog.source_for(node.source)
    except UnknownSourceError:
        return None
    if not source.supports_sql():
        return None
    doc_id = str(node.source).lstrip("&")
    try:
        table_name = source.table_for_document(doc_id)
        label = source.label_for_document(doc_id)
    except (SourceError, AttributeError):
        return None
    schema = source.describe_table(table_name)
    model = _SqlModel(source.server_name)
    alias = aliases.next_alias(table_name)
    model.tables.append((table_name, alias, label, schema))
    model.env[node.var] = ("tuple", 0)
    return model


def _compile_getd(node, catalog, aliases):
    model = _try_compile(node.input, catalog, aliases)
    if model is None:
        return None
    binding = model.env.get(node.in_var)
    if binding is None:
        return None
    steps = list(node.path.steps)
    ends_with_data = steps and steps[-1].kind == Step.DATA
    if ends_with_data:
        steps = steps[:-1]
    if any(s.kind != Step.LABEL for s in steps):
        return None
    labels = [s.label for s in steps]

    if binding[0] == "tuple":
        alias_idx = binding[1]
        __, __, element_label, schema = model.tables[alias_idx]
        if not labels or labels[0] != element_label:
            return None
        if len(labels) == 1:
            # The tuple object itself (possibly atomized - not useful).
            if ends_with_data:
                return None
            model.env[node.out_var] = ("tuple", alias_idx)
            return model
        if len(labels) == 2 and schema.has_column(labels[1]):
            kind = "leaf" if ends_with_data else "field"
            model.env[node.out_var] = ("col", alias_idx, labels[1], kind)
            return model
        return None

    # binding is a column (field element): only path field[.data()]
    __, alias_idx, column, kind = binding
    if kind != "field":
        return None
    if len(labels) == 1 and labels[0] == column and ends_with_data:
        model.env[node.out_var] = ("col", alias_idx, column, "leaf")
        return model
    return None


def _compile_select(node, catalog, aliases):
    model = _try_compile(node.input, catalog, aliases)
    if model is None:
        return None
    fragment = _condition_sql(node.condition, model, catalog)
    if fragment is None:
        return None
    model.where.extend(fragment)
    return model


def _compile_join(node, catalog, aliases, semi):
    left = _try_compile(node.left, catalog, aliases)
    if left is None:
        return None
    right = _try_compile(node.right, catalog, aliases)
    if right is None:
        return None
    if left.server != right.server:
        return None
    probe_vars = set()
    probe_model = None
    if semi == "left":
        probe_vars = set(right.env)
        probe_model = right
    elif semi == "right":
        probe_vars = set(left.env)
        probe_model = left
    left.merge(right)
    for condition in node.conditions:
        fragment = _condition_sql(condition, left, catalog)
        if fragment is None:
            return None
        left.where.extend(fragment)
    if semi is not None:
        left.distinct = True
        if _semijoin_may_duplicate(node, probe_model):
            left.distinct_required = True
        left.internal_only |= probe_vars
    return left


def _semijoin_may_duplicate(node, probe_model):
    """Whether the semijoin's self-join encoding can duplicate rows.

    ``False`` only when provably not: the probe side is a *single*
    table with a primary key, matched through a full-primary-key
    (KEY-mode) equality — each kept row then joins at most one probe
    row.  This is schema-level reasoning, valid independent of data,
    so a cached plan without the DISTINCT stays correct after DML.
    """
    if len(probe_model.tables) != 1:
        return True
    schema = probe_model.tables[0][3]
    if not schema.primary_key:
        return True
    probe_vars = set(probe_model.env)
    for condition in node.conditions:
        if condition.mode != KEY or condition.op != "=":
            continue
        if not condition.is_var_var():
            continue
        left_probe = condition.left.var in probe_vars
        right_probe = condition.right.var in probe_vars
        if left_probe != right_probe:
            probe_binding = probe_model.env.get(
                condition.left.var if left_probe else condition.right.var
            )
            if probe_binding is not None and probe_binding[0] == "tuple":
                return False
    return True


def _compile_orderby(node, catalog, aliases):
    model = _try_compile(node.input, catalog, aliases)
    if model is None:
        return None
    for var in node.variables:
        refs = _order_refs_for(var, model)
        if refs is None:
            return None
        model.order.extend(refs)
    return model


def _order_refs_for(var, model):
    binding = model.env.get(var)
    if binding is None:
        return None
    if binding[0] == "col":
        return ["{}.{}".format(model.alias_of(binding[1]), binding[2])]
    __, alias, __, schema = model.tables[binding[1]]
    if not schema.primary_key:
        return None
    return ["{}.{}".format(alias, col) for col in schema.primary_key]


def _condition_sql(condition, model, catalog):
    """SQL WHERE fragments for one algebra condition, or ``None``."""

    def colref(var):
        binding = model.env.get(var)
        if binding is None or binding[0] != "col":
            return None
        return "{}.{}".format(model.alias_of(binding[1]), binding[2])

    if condition.mode == VALUE:
        if condition.is_var_const():
            ref = colref(condition.left.var)
            if ref is None:
                return None
            return ["{} {} {}".format(
                ref, _sql_op(condition.op), _sql_literal(condition.right.value)
            )]
        if condition.is_var_var():
            left = colref(condition.left.var)
            right = colref(condition.right.var)
            if left is None or right is None:
                return None
            return ["{} {} {}".format(left, _sql_op(condition.op), right)]
        return None

    if condition.mode == KEY:
        if not condition.is_var_var() or condition.op != "=":
            return None
        left_b = model.env.get(condition.left.var)
        right_b = model.env.get(condition.right.var)
        if (
            left_b is None or right_b is None
            or left_b[0] != "tuple" or right_b[0] != "tuple"
        ):
            return None
        __, l_alias, __, l_schema = model.tables[left_b[1]]
        __, r_alias, __, r_schema = model.tables[right_b[1]]
        if (
            not l_schema.primary_key
            or l_schema.primary_key != r_schema.primary_key
        ):
            return None
        return [
            "{}.{} = {}.{}".format(l_alias, col, r_alias, col)
            for col in l_schema.primary_key
        ]

    if condition.mode == OID:
        if not condition.is_var_const() or condition.op != "=":
            return None
        binding = model.env.get(condition.left.var)
        if binding is None or binding[0] != "tuple":
            return None
        table_name, alias, __, schema = model.tables[binding[1]]
        if not schema.primary_key:
            return None
        source = catalog.server(model.server)
        try:
            key_values = source.oid_to_key(
                table_name, condition.right.value
            )
        except SourceError:
            return None
        return [
            "{}.{} = {}".format(alias, col, _sql_literal(value))
            for col, value in zip(schema.primary_key, key_values)
        ]

    return None


def _sql_op(op):
    return op


def _sql_literal(value):
    if isinstance(value, str):
        return "'{}'".format(value.replace("'", "''"))
    return str(value)


# -- rQ construction --------------------------------------------------------------


def _build_relquery(root, node, model, ctx, pending_groups, catalog, cost):
    live = ctx.used_above(node)
    exported = [
        var
        for var in sorted(model.env)
        if var in live and var not in model.internal_only
    ]
    if not exported:
        # Export something so the operator has an output schema: prefer
        # the first tuple variable.
        tuple_vars = [
            v for v, b in sorted(model.env.items())
            if b[0] == "tuple" and v not in model.internal_only
        ]
        exported = tuple_vars[:1]
        if not exported:
            return node

    select_items = []       # SQL select list text
    varmap = []
    for var in exported:
        binding = model.env[var]
        if binding[0] == "tuple":
            table_name, alias, label, schema = model.tables[binding[1]]
            columns = []
            for col in schema.columns:
                columns.append(
                    (len(select_items), col.name)
                )
                select_items.append("{}.{}".format(alias, col.name))
            key_positions = [
                columns[schema.column_index(k)][0]
                for k in schema.primary_key
            ]
            varmap.append(
                ops.RQVar(var, label, columns, key_positions, kind="element")
            )
        else:
            __, alias_idx, column, kind = binding
            alias = model.alias_of(alias_idx)
            position = len(select_items)
            select_items.append("{}.{}".format(alias, column))
            varmap.append(
                ops.RQVar(
                    var, column, [(position, column)], (), kind=kind
                )
            )

    order_refs = list(model.order)
    order_vars = []
    group_vars_here = [v for v in pending_groups if v in model.env]
    if group_vars_here:
        for var in group_vars_here:
            refs = _order_refs_for(var, model)
            if refs is None:
                order_refs = None
                break
            order_refs.extend(r for r in refs if r not in order_refs)
        if order_refs is not None:
            order_vars = list(group_vars_here)
            # Order the remaining exported tuples too, for deterministic
            # nesting (the paper's "ORDER BY c1.id, o1.orid").
            for var in exported:
                if var in group_vars_here:
                    continue
                if model.env[var][0] != "tuple":
                    continue
                refs = _order_refs_for(var, model)
                if refs:
                    order_refs.extend(
                        r for r in refs if r not in order_refs
                    )
    if order_refs is None:
        order_refs = list(model.order)

    row_counts = _fresh_row_counts(model, catalog) if cost else None
    sql = _render_sql(model, select_items, order_refs, row_counts)
    return ops.RelQuery(model.server, sql, varmap, order_vars=order_vars)


def _fresh_row_counts(model, catalog):
    """``{alias: analyzed_row_count}`` for the model's tables, or
    ``None`` when any table lacks fresh statistics (the gate that keeps
    default SQL byte-identical to the seed's)."""
    try:
        source = catalog.server(model.server)
    except Exception:
        return None
    getter = getattr(source, "table_statistics", None)
    if not callable(getter):
        return None
    counts = {}
    for table_name, alias, __, __ in model.tables:
        stats = getter(table_name)
        if stats is None:
            return None
        counts[alias] = stats.row_count
    return counts


def _render_sql(model, select_items, order_refs, row_counts=None):
    tables = model.tables
    distinct = model.distinct
    if row_counts is not None:
        # Fresh statistics on every table: list the FROM entries
        # smallest-first (helps syntactic source planners; harmless for
        # cost-based ones) and drop a DISTINCT no semijoin actually
        # needs.  Both are correctness-neutral rewrites of the SQL text.
        tables = sorted(
            tables, key=lambda entry: (row_counts[entry[1]], entry[1])
        )
        if distinct and not model.distinct_required:
            distinct = False
    parts = ["SELECT "]
    if distinct:
        parts.append("DISTINCT ")
    parts.append(", ".join(select_items))
    parts.append(" FROM ")
    parts.append(
        ", ".join(
            "{} {}".format(table, alias)
            for table, alias, __, __ in tables
        )
    )
    if model.where:
        parts.append(" WHERE ")
        parts.append(" AND ".join(model.where))
    if order_refs:
        parts.append(" ORDER BY ")
        parts.append(", ".join(order_refs))
    return "".join(parts)
