"""The rewrite rules (Table 2 of the paper, plus the supporting passes
the worked example of Figures 13-21 relies on).

Each rule is a callable object: ``rule.apply(node, ctx)`` either returns
a :class:`RuleResult` — the replacement subtree plus an optional *global*
variable renaming ("the only change made in the rest of the plan by a
rewriting rule application is the possible renaming of variables") — or
``None`` when the rule does not match at ``node``.

Correspondence with the paper's Table 2:

===========================  ==================================================
Rule object                   Table-2 rows / paper pass
===========================  ==================================================
``ComposeMkSrcTD``            row 11 (eliminate ``tD``/``mksrc`` of composition)
``GetDThroughCrElt``          rows 1-4 (path vs ``crElt``; row 2 identifies
                              variables, row 4 yields ``Empty``)
``GetDThroughCat``            rows 5-8 (path vs ``cat``; statically resolving
                              which operand can match)
``GetDIntoApply``             row 9 (join introduction over the group vars)
``GetDPushdown``              row 10-style commuting (push ``getD`` below
                              operators it does not interact with, and into
                              the join/semijoin branch that defines its input)
``SelectPushdown``            the "selection conditions are pushed down as far
                              as possible" pass (Fig. 19)
``JoinToSemiJoin``            the live-variable analysis of Fig. 20
``SemiJoinBelowGroupBy``      row 12 (push the semijoin below gBy, Fig. 21)
``EmptyPropagation``          consequence closure of row 4
``DeadOperatorElimination``   "all operators which create bindings which are
                              not used by the query can simply be removed"
===========================  ==================================================
"""

from __future__ import annotations

from repro.algebra import operators as ops
from repro.algebra.conditions import Condition
from repro.algebra.plan import (
    all_vars,
    clone_plan,
    defined_vars,
    iter_operators,
    rename_vars,
    replace_operator,
)
from repro.rewriter.rule import Rule, RuleResult
from repro.xmltree.paths import Path, Step

__all__ = [
    "ComposeMkSrcTD", "DEFAULT_RULES", "DeadOperatorElimination",
    "EmptyPropagation", "GetDIntoApply", "GetDPushdown", "GetDThroughCat",
    "GetDThroughCrElt", "JoinToSemiJoin", "Rule", "RuleResult",
    "SET_SEMANTICS_RULES", "SelectPushdown", "SemiJoinBelowGroupBy",
]

LIST_STEP = Step(Step.LABEL, "list")


def _starts_with_list(path):
    if not path.steps:
        return False
    head = path.steps[0]
    return head.kind == Step.WILD or (
        head.kind == Step.LABEL and head.label == "list"
    )


def _empty_for(node):
    variables = defined_vars(node)
    return ops.Empty(variables or ())


class ComposeMkSrcTD(Rule):
    """Table 2, row 11: ``mksrc(viewid, $X)`` over ``tD($1, viewid)``
    collapses to the view body with ``$X`` identified with ``$1``."""

    name = "compose-mksrc-tD (rule 11)"
    schema_contract = "widen"  # the view body's variables surface

    def apply(self, node, ctx):
        if not isinstance(node, ops.MkSrc) or node.input is None:
            return None
        if not isinstance(node.input, ops.TD):
            return None
        td = node.input
        rename = {node.var: td.var} if node.var != td.var else {}
        return RuleResult(td.input, rename)


class GetDThroughCrElt(Rule):
    """Table 2, rows 1-4: match a ``getD`` path against the ``crElt``
    that constructs its input variable's elements."""

    name = "getD-through-crElt (rules 1-4)"
    schema_contract = "preserve"

    def apply(self, node, ctx):
        if not isinstance(node, ops.GetD):
            return None
        crelt = node.input
        if not isinstance(crelt, ops.CrElt) or crelt.out_var != node.in_var:
            return None
        path = node.path
        if not path.steps:
            return None
        head = path.steps[0]
        if head.kind == Step.DATA:
            return None  # atomization of a constructed element: leave
        if head.kind == Step.LABEL and head.label != crelt.label:
            # Row 4: the path provably matches nothing.
            return RuleResult(_empty_for(node))
        residual = path.residual()
        if residual.is_empty():
            # Row 2: the path addresses the constructed element itself;
            # identify the output variable with the crElt variable.
            return RuleResult(crelt, {node.out_var: crelt.out_var})
        if residual.steps[0].kind == Step.DATA:
            return None  # data() on the constructed element: leave
        if crelt.ch_is_list:
            # Rows 3/7 shape: the child is a single element; continue the
            # path directly from it.
            new_path = residual
        else:
            # Row 1: the children come from the list bound to $W;
            # re-root the path at the list.
            new_path = Path((LIST_STEP,) + residual.steps)
        pushed = ops.GetD(crelt.ch_var, new_path, node.out_var, crelt.input)
        return RuleResult(crelt.with_children((pushed,)))


class GetDThroughCat(Rule):
    """Table 2, rows 5-8: resolve a ``getD`` over a concatenation by
    deciding statically which operand's elements can match the path."""

    name = "getD-through-cat (rules 5-8)"
    schema_contract = "preserve"

    def apply(self, node, ctx):
        if not isinstance(node, ops.GetD):
            return None
        cat = node.input
        if not isinstance(cat, ops.Cat) or cat.out_var != node.in_var:
            return None
        path = node.path
        if not _starts_with_list(path):
            return RuleResult(_empty_for(node))
        residual = path.residual()
        if residual.is_empty() or residual.steps[0].kind == Step.DATA:
            return RuleResult(_empty_for(node))

        def operand_labels(var, single):
            if single:
                return ctx.var_labels(var)
            return ctx.list_item_labels(var)

        can_x = ctx.labels_can_match(
            operand_labels(cat.x_var, cat.x_single), residual
        )
        can_y = ctx.labels_can_match(
            operand_labels(cat.y_var, cat.y_single), residual
        )
        if can_x and can_y:
            return None  # statically unresolvable: evaluate as-is
        if not can_x and not can_y:
            return RuleResult(_empty_for(node))
        var, single = (
            (cat.x_var, cat.x_single) if can_x else (cat.y_var, cat.y_single)
        )
        if single:
            new_path = residual
        else:
            new_path = Path((LIST_STEP,) + residual.steps)
        pushed = ops.GetD(var, new_path, node.out_var, cat.input)
        return RuleResult(cat.with_children((pushed,)))


class GetDIntoApply(Rule):
    """Table 2, row 9: push a ``getD`` over an ``apply``'d nested plan by
    joining a renamed copy of the group's input on the group variables.

    "This has the effect of creating an additional copy of the bindings
    of the variables appearing in the nested plan.  This allows us to
    push the selection conditions ... along one branch of the join
    without losing any of the bindings."
    """

    name = "getD-into-apply (rule 9)"
    schema_contract = "widen"  # adds the renamed copy branch

    def apply(self, node, ctx):
        if not isinstance(node, ops.GetD):
            return None
        apply_op = node.input
        if (
            not isinstance(apply_op, ops.Apply)
            or apply_op.out_var != node.in_var
            or not isinstance(apply_op.plan, ops.TD)
            or apply_op.inp_var is None
        ):
            return None
        gby = apply_op.input
        if not isinstance(gby, ops.GroupBy) or gby.out_var != apply_op.inp_var:
            return None
        path = node.path
        if not _starts_with_list(path):
            return RuleResult(_empty_for(node))
        residual = path.residual()
        if residual.is_empty():
            return RuleResult(_empty_for(node))

        inner_td = apply_op.plan
        copy_body = _inline_nested(inner_td.input, apply_op.inp_var, gby.input)
        # Rename every variable of the copy to a fresh primed name.
        rename = {
            var: ctx.vars.fresh(var + "_c")
            for var in sorted(all_vars(copy_body))
        }
        copy_body = rename_vars(copy_body, rename)
        inner_var = rename.get(inner_td.var, inner_td.var)
        left = ops.GetD(inner_var, residual, node.out_var, copy_body)
        conditions = tuple(
            Condition.key_equals(rename.get(g, g), g) for g in gby.group_vars
        )
        return RuleResult(ops.Join(conditions, left, apply_op))


def _inline_nested(nested_body, inp_var, group_input):
    """Replace the ``nestedSrc(inp_var)`` leaf with the group's input."""
    body = clone_plan(nested_body)
    for op in list(iter_operators(body)):
        if isinstance(op, ops.NestedSrc) and op.var == inp_var:
            body = replace_operator(body, op, clone_plan(group_input))
    return body


class GetDPushdown(Rule):
    """Commute a ``getD`` below operators it does not interact with, and
    into the join/semijoin branch that defines its input variable."""

    name = "getD-pushdown"
    schema_contract = "preserve"

    def apply(self, node, ctx):
        if not isinstance(node, ops.GetD):
            return None
        below = node.input
        if isinstance(below, (ops.CrElt, ops.Cat, ops.Apply, ops.GroupBy)):
            if below.out_var == node.in_var:
                return None  # interaction: other rules own this case
            if isinstance(below, ops.GroupBy):
                # Sound only when getD reads a group variable and the
                # result is regrouped — multiplicity changes otherwise.
                return None
            pushed = node.with_children((below.input,))
            return RuleResult(below.with_children((pushed,)))
        if isinstance(below, ops.OrderBy):
            pushed = node.with_children((below.input,))
            return RuleResult(below.with_children((pushed,)))
        if isinstance(below, ops.Join):
            left_def = defined_vars(below.left) or frozenset()
            right_def = defined_vars(below.right) or frozenset()
            if node.in_var in left_def:
                pushed = node.with_children((below.left,))
                return RuleResult(
                    below.with_children((pushed, below.right))
                )
            if node.in_var in right_def:
                pushed = node.with_children((below.right,))
                return RuleResult(
                    below.with_children((below.left, pushed))
                )
            return None
        if isinstance(below, ops.SemiJoin):
            kept = below.left if below.keep == "left" else below.right
            kept_def = defined_vars(kept) or frozenset()
            if node.in_var in kept_def:
                pushed = node.with_children((kept,))
                children = (
                    (pushed, below.right)
                    if below.keep == "left"
                    else (below.left, pushed)
                )
                return RuleResult(below.with_children(children))
            return None
        return None


class SelectPushdown(Rule):
    """Push selections down as far as possible (Fig. 19)."""

    name = "select-pushdown"
    schema_contract = "preserve"

    def apply(self, node, ctx):
        if not isinstance(node, ops.Select):
            return None
        below = node.input
        cond_vars = node.condition.variables()
        if isinstance(below, (ops.GetD, ops.CrElt, ops.Cat, ops.Apply)):
            if below.local_defined_vars() & cond_vars:
                return None
            pushed = node.with_children((below.input,))
            return RuleResult(below.with_children((pushed,)))
        if isinstance(below, ops.OrderBy):
            pushed = node.with_children((below.input,))
            return RuleResult(below.with_children((pushed,)))
        if isinstance(below, ops.GroupBy):
            if not cond_vars <= set(below.group_vars):
                return None
            pushed = node.with_children((below.input,))
            return RuleResult(below.with_children((pushed,)))
        if isinstance(below, ops.Join):
            left_def = defined_vars(below.left) or frozenset()
            right_def = defined_vars(below.right) or frozenset()
            if cond_vars <= left_def:
                pushed = node.with_children((below.left,))
                return RuleResult(below.with_children((pushed, below.right)))
            if cond_vars <= right_def:
                pushed = node.with_children((below.right,))
                return RuleResult(below.with_children((below.left, pushed)))
            if cond_vars <= (left_def | right_def):
                merged = ops.Join(
                    below.conditions + (node.condition,),
                    below.left,
                    below.right,
                )
                return RuleResult(merged)
            return None
        if isinstance(below, ops.SemiJoin):
            left_def = defined_vars(below.left) or frozenset()
            right_def = defined_vars(below.right) or frozenset()
            if cond_vars <= left_def:
                pushed = node.with_children((below.left,))
                return RuleResult(below.with_children((pushed, below.right)))
            if cond_vars <= right_def:
                pushed = node.with_children((below.right,))
                return RuleResult(below.with_children((below.left, pushed)))
            return None
        return None


class JoinToSemiJoin(Rule):
    """Live-variable analysis: a join whose one side's bindings feed
    nothing downstream becomes a semijoin (Fig. 20).

    Set-semantics rule: under multiset semantics this also eliminates
    duplicates of the kept side (the paper's algebra is set-based).
    """

    name = "join-to-semijoin (live variables)"
    schema_contract = "narrow"  # drops the probe side's bindings
    set_semantics = True

    def apply(self, node, ctx):
        if not isinstance(node, ops.Join):
            return None
        used = ctx.used_above(node)
        left_def = defined_vars(node.left) or None
        right_def = defined_vars(node.right) or None
        if left_def is None or right_def is None:
            return None
        if not (left_def & used):
            return RuleResult(
                ops.SemiJoin(node.conditions, node.left, node.right,
                             keep="right")
            )
        if not (right_def & used):
            return RuleResult(
                ops.SemiJoin(node.conditions, node.left, node.right,
                             keep="left")
            )
        return None


class SemiJoinBelowGroupBy(Rule):
    """Table 2, row 12: push a semijoin on the group variables below the
    ``apply``/``gBy`` pair so it can reach the source (Fig. 21)."""

    name = "semijoin-below-gBy (rule 12)"
    schema_contract = "preserve"

    def apply(self, node, ctx):
        if not isinstance(node, ops.SemiJoin):
            return None
        if node.keep == "right":
            probe, kept = node.left, node.right
        else:
            probe, kept = node.right, node.left
        if not isinstance(kept, ops.Apply):
            return None
        gby = kept.input
        if not isinstance(gby, ops.GroupBy) or gby.out_var != kept.inp_var:
            return None
        probe_def = defined_vars(probe) or frozenset()
        for c in node.conditions:
            if not c.variables() <= (set(gby.group_vars) | probe_def):
                return None
        inner_semijoin = ops.SemiJoin(
            node.conditions,
            probe if node.keep == "right" else gby.input,
            gby.input if node.keep == "right" else probe,
            keep=node.keep,
        )
        new_gby = gby.with_children((inner_semijoin,))
        return RuleResult(kept.with_children((new_gby,)))


class EmptyPropagation(Rule):
    """Propagate ``Empty`` upward (consequence of rule 4)."""

    name = "empty-propagation"
    schema_contract = "preserve"

    def apply(self, node, ctx):
        if isinstance(node, (ops.Empty, ops.TD)):
            return None
        children = node.children
        if not children:
            return None
        if isinstance(node, ops.SemiJoin):
            kept = node.left if node.keep == "left" else node.right
            probe = node.right if node.keep == "left" else node.left
            if isinstance(kept, ops.Empty) or isinstance(probe, ops.Empty):
                return RuleResult(_empty_for(node))
            return None
        if any(isinstance(c, ops.Empty) for c in children):
            return RuleResult(_empty_for(node))
        return None


class DeadOperatorElimination(Rule):
    """Remove one-to-one operators whose output variable is dead."""

    name = "dead-operator-elimination"
    schema_contract = "narrow"  # removes the dead output binding

    _ONE_TO_ONE = (ops.CrElt, ops.Cat, ops.Apply)

    def apply(self, node, ctx):
        if not isinstance(node, self._ONE_TO_ONE):
            return None
        used = ctx.used_above(node)
        if node.out_var in used:
            return None
        return RuleResult(node.input)


#: The default rule set, in application priority order.
DEFAULT_RULES = (
    EmptyPropagation(),
    ComposeMkSrcTD(),
    GetDThroughCrElt(),
    GetDThroughCat(),
    GetDIntoApply(),
    GetDPushdown(),
    SelectPushdown(),
    SemiJoinBelowGroupBy(),
    JoinToSemiJoin(),
    DeadOperatorElimination(),
)

#: Rules that are sound under multiset (duplicate-preserving) semantics
#: only; the paper's algebra is set-based, so they are on by default.
SET_SEMANTICS_RULES = (JoinToSemiJoin,)
