"""The rewriting optimizer (Section 6 and Table 2 of the paper).

"Efficient composition plans are derived in MIX by having a rewriter
module optimize the straightforward (and inefficient) composition plans."
The rewriter

* eliminates the ``mksrc``/``tD`` pairs that naive composition creates
  (rule 11),
* matches the path expressions of the composed query's ``getD`` operators
  against the element structure the view's ``crElt``/``cat`` operators
  build, pushing them below element creation (rules 1-8) or proving them
  unsatisfiable (rule 4 → :class:`~repro.algebra.operators.Empty`),
* pushes ``getD``s into the nested plans of ``apply`` by introducing a
  join on the group variables (rule 9),
* pushes selections down as far as possible,
* converts joins whose one side feeds nothing downstream into semijoins
  (the live-variable analysis of Fig. 19-20),
* pushes semijoins below group-by (rule 12), and finally
* carves the maximal relational subtree out of the plan and compiles it
  into a single SQL query with the right ORDER BY — the ``rQ`` operator
  of Fig. 22 (:mod:`repro.rewriter.sql_split`).

:class:`~repro.rewriter.engine.Rewriter` applies the rule set to a
fixpoint and records a step-by-step trace, which is what regenerates the
paper's Figures 13 through 21.
"""

from repro.rewriter.engine import Rewriter, RewriteStep
from repro.rewriter.rule import Rule, RuleResult, SCHEMA_CONTRACTS
from repro.rewriter.rules import DEFAULT_RULES
from repro.rewriter.sql_split import push_to_sources

__all__ = [
    "DEFAULT_RULES",
    "RewriteStep",
    "Rewriter",
    "Rule",
    "RuleResult",
    "SCHEMA_CONTRACTS",
    "push_to_sources",
]
