"""The first-class rewrite-rule contract (sycamore-style plugin rules).

A rule is any object with a ``name`` and an ``apply(node, ctx)`` method
returning a :class:`RuleResult` or ``None``; subclassing :class:`Rule`
is the convenient way to get the metadata defaults.  Beyond the
callable itself, a rule *declares* two facts the engine and the
certifier (:mod:`repro.analysis.rulecheck`) key on:

``schema_contract``
    What the rule promises about the root binding-list schema of any
    plan it fires on, modulo the rename it returns:

    * ``"preserve"`` — the schema is unchanged (most Table-2 rules);
    * ``"widen"`` — every pre-existing binding survives, new ones may
      appear (rule 11 exposes the view body's variables, rule 9 adds a
      renamed copy branch);
    * ``"narrow"`` — bindings may be dropped but never invented
      (join→semijoin, dead-operator elimination);
    * ``"none"`` — no static promise; the certifier falls back to the
      differential answer-preservation check exclusively.

``set_semantics``
    ``True`` for rules sound only under the paper's set-based algebra
    (duplicates may be eliminated).  ``Rewriter(set_semantics=False)``
    skips them so every rewrite preserves exact multiset results.

:func:`validate_rule` enforces the *registration* contract (callable
``apply``, non-empty name, known contract string) — duck-typed rules
with missing metadata are accepted with the defaults.
:func:`is_certifiable` is the stricter test a ``Mediator(strict=True)``
applies to extension rules: all metadata must be declared explicitly.
"""

from __future__ import annotations

from repro.errors import RewriteError

#: The declared schema contracts, in decreasing strength.
SCHEMA_CONTRACTS = ("preserve", "widen", "narrow", "none")


class RuleResult:
    """A successful rule application: the replacement subtree plus an
    optional *global* variable renaming ("the only change made in the
    rest of the plan by a rewriting rule application is the possible
    renaming of variables")."""

    __slots__ = ("replacement", "rename")

    def __init__(self, replacement, rename=None):
        self.replacement = replacement
        self.rename = rename or {}


class Rule:
    """Base class for rewrite rules; subclasses override :meth:`apply`.

    Attributes:
        name: unique registration name (application priority is the
            registration order, so the name is also what EXPLAIN's
            ``-- rewrite: rule=...`` provenance and the per-stage
            verifier's ``rewrite[...]`` stages show).
        schema_contract: the declared root-schema promise (see module
            docstring); checked per firing by the certifier.
        set_semantics: sound only under set semantics when ``True``.
    """

    name = ""
    schema_contract = "preserve"
    set_semantics = False

    def apply(self, node, ctx):
        """Return a :class:`RuleResult`, or ``None`` when the rule does
        not match at ``node``."""
        raise NotImplementedError

    def __repr__(self):
        return "<rule {!r}>".format(self.name or type(self).__name__)


def rule_name(rule):
    """The rule's registration name (may be empty for invalid rules)."""
    name = getattr(rule, "name", None)
    return name if isinstance(name, str) else ""


def declared_contract(rule):
    """The rule's schema contract; defaults to ``"preserve"``."""
    return getattr(rule, "schema_contract", "preserve")


def is_set_semantics(rule):
    """Whether the rule is sound only under set semantics."""
    return bool(getattr(rule, "set_semantics", False))


def validate_rule(rule):
    """Enforce the registration contract; raises :class:`RewriteError`.

    Accepts duck-typed rules (no :class:`Rule` base needed): only a
    callable ``apply`` and a non-empty string ``name`` are mandatory,
    and a *declared* ``schema_contract`` must be one of
    :data:`SCHEMA_CONTRACTS`.
    """
    if not callable(getattr(rule, "apply", None)):
        raise RewriteError(
            "rule {!r} has no callable apply(node, ctx)".format(rule)
        )
    name = getattr(rule, "name", None)
    if not isinstance(name, str) or not name:
        raise RewriteError(
            "rule {!r} must declare a non-empty string name".format(rule)
        )
    contract = declared_contract(rule)
    if contract not in SCHEMA_CONTRACTS:
        raise RewriteError(
            "rule {!r} declares unknown schema_contract {!r} "
            "(expected one of {})".format(
                name, contract, ", ".join(SCHEMA_CONTRACTS)
            )
        )
    return rule


def is_certifiable(rule):
    """Whether the rule declares the *full* metadata a strict mediator
    demands of extension rules (no defaults assumed)."""
    if not callable(getattr(rule, "apply", None)):
        return False
    name = getattr(rule, "name", None)
    if not isinstance(name, str) or not name:
        return False
    if getattr(rule, "schema_contract", None) not in SCHEMA_CONTRACTS:
        return False
    return isinstance(getattr(rule, "set_semantics", None), bool)
