"""Command-line entry point: ``python -m repro <command>``.

Commands:

* ``demo``     — run the paper's Example 2.1 interactively-ish, printing
  every QDOM command and what it returned;
* ``figures``  — regenerate the paper's figure artifacts (plans, result
  trees, the rewriting trace, and the Fig. 22 SQL) to stdout;
* ``bench``    — print the quantitative experiment series without
  needing pytest;
* ``explain``  — EXPLAIN ANALYZE the paper's Q1 (or a query read from a
  file with ``explain <path>``) against the Fig. 2 database; ``--json``
  additionally prints the JSON trace of a single ``d`` navigation, and
  ``--analyze`` collects source statistics first so every estimable
  operator shows ``est=… act=…``;
* ``sql``      — run SQL statements (including ``ANALYZE``) against the
  paper database: each quoted argument is one statement, or statements
  are read from stdin one per line;
* ``lint``     — static schema-aware analysis of XQuery files against
  the paper catalog (dead paths, unsatisfiable predicates, unused
  variables; see :mod:`repro.analysis`); with no files, lints the
  built-in Q1.  ``--json`` switches to the machine-readable report,
  ``--analyze`` collects statistics first so range checks can fire,
  ``--strict`` exits nonzero on warnings too;
* ``check-plan`` — compile a query (default: the golden Fig. 22 Q1)
  through translate → Table-2 rewrites → SQL split and run the static
  plan verifier after every stage, printing a per-stage verdict;
* ``check-rules`` — statically certify the rewrite rule set against the
  generated plan corpus (schema contracts, termination/confluence,
  liveness/shadowing, differential answer preservation; see
  :mod:`repro.analysis.rulecheck`).  ``--rules=module:attr`` appends
  extension rules loaded from an importable module to the Table-2 set,
  ``--json`` switches to the machine-readable report; exit status 1
  means at least one rule failed certification;
* ``serve``    — run the concurrent mediator server (JSON-lines over
  TCP, see :mod:`repro.server`) over the paper database;
  ``--host``/``--port`` bind the endpoint (default 127.0.0.1:4617),
  ``--max-sessions``/``--max-inflight`` set the admission limits;
* ``bench-serve`` — drive a scaled workload server with N closed-loop
  zipf clients and print throughput + p50/p95/p99 latency;
  ``--bench-json[=DIR]`` additionally writes ``BENCH_SERVE.json``
  (PR-4 bench-json format) to DIR (default: the current directory).

``demo`` and ``explain`` accept ``--fault-profile=NAME`` (with optional
``--fault-seed=N``), which interposes a seeded
:class:`~repro.resilience.FaultInjectingSource` plus a
:class:`~repro.resilience.ResilientSource` between the mediator and the
Fig. 2 wrapper, and switches the mediator to partial-result degradation:

* ``transient`` — random transient pull/SQL faults, absorbed by retry;
* ``slow``      — slow pulls against a latency budget (timeouts);
* ``outage``    — a permanent failure that trips the circuit breaker.

All profile timing runs on a manual clock: no real sleeps.

The multi-level query cache (plan / pushed-SQL / navigation, see
:mod:`repro.cache`) is **on** for CLI runs; ``--no-cache`` switches it
off and ``--cache-size=N`` bounds each level (``0`` also disables).
Statistics-driven cost-based planning (:mod:`repro.optimizer`) is also
on by default; ``--no-optimizer`` falls back to the seed's syntactic
plans.

Block-at-a-time execution (:mod:`repro.engine.block`) is on by default;
``--block-size=N`` tunes the vector width for ``demo``, ``explain``,
``serve``, and ``bench-serve`` — ``--block-size=1`` restores the seed's
tuple-at-a-time pipeline (and its byte-identical EXPLAIN output).

``demo`` and ``explain`` also accept ``--shards=K``, which replaces the
single Fig. 2 wrapper by a :class:`~repro.sources.shard.ShardedSource`
over K members — ``orders`` hash-partitioned on ``cid``, ``customer``
replicated — so pushed SQL scatters to all live members in parallel and
``explain`` grows a ``-- shard:`` footer.  ``--shards`` cannot be
combined with ``--fault-profile`` (the profiles script a single
source's pull schedule).
"""

from __future__ import annotations

import sys

FAULT_PROFILES = ("transient", "slow", "outage")


def _paper_database(stats=None):
    from repro import Database, Instrument

    db = Database("paper", stats=stats or Instrument())
    db.run("CREATE TABLE customer (id TEXT, name TEXT, addr TEXT,"
           " PRIMARY KEY (id))")
    db.run("CREATE TABLE orders (orid INT, cid TEXT, value INT,"
           " PRIMARY KEY (orid))")
    db.run("INSERT INTO customer VALUES ('XYZ', 'XYZInc.', 'LosAngeles'),"
           " ('DEF', 'DEFCorp.', 'NewYork'), ('ABC', 'ABCInc.', 'SanDiego')")
    db.run("INSERT INTO orders VALUES (28904, 'XYZ', 2400),"
           " (87456, 'ABC', 200000), (111, 'XYZ', 100), (222, 'DEF', 30000)")
    return db


def _paper_mediator(fault_profile=None, fault_seed=0, cache=True,
                    cache_size=128, cost_optimizer=True, block_size=None,
                    shards=None):
    from repro import Instrument, Mediator, RelationalWrapper

    if shards is not None and fault_profile is not None:
        raise SystemExit(
            "--shards cannot be combined with --fault-profile: the fault "
            "profiles script a single source's pull schedule (wrap shard "
            "members with repro.resilience.shard_resilience instead)"
        )
    stats = Instrument()
    if shards is not None:
        wrapper = _sharded_paper_source(shards, stats)
        mediator = Mediator(stats=stats, cache=cache, cache_size=cache_size,
                            cost_optimizer=cost_optimizer,
                            block_size=block_size)
        return stats, mediator.add_source(wrapper)
    db = _paper_database(stats)
    wrapper = (
        RelationalWrapper(db)
        .register_document("root1", "customer")
        .register_document("root2", "orders", element_label="order")
    )
    if fault_profile is None:
        mediator = Mediator(stats=stats, cache=cache, cache_size=cache_size,
                            cost_optimizer=cost_optimizer,
                            block_size=block_size)
        return stats, mediator.add_source(wrapper)
    source = _faulty_source(wrapper, fault_profile, fault_seed, stats)
    # SQL push-down off: the demo should *navigate* the faulty source,
    # so the injected pull faults (and their recovery) actually fire.
    # The cache stays on when asked: the degrade policy automatically
    # keeps poisoned answers out of the navigation memo.
    # Fault profiles default to tuple mode: their schedules fire by pull
    # position, and block prefetching reorders pulls — the profile
    # narratives (which fault fires where, when the breaker trips) are
    # written against the seed's demand order.  An explicit
    # ``--block-size`` still wins.
    mediator = Mediator(
        stats=stats, push_sql=False, on_source_error="degrade",
        cache=cache, cache_size=cache_size, cost_optimizer=cost_optimizer,
        block_size=1 if block_size is None else block_size,
    )
    return stats, mediator.add_source(source)


_PAPER_CUSTOMERS = (
    ("XYZ", "XYZInc.", "LosAngeles"),
    ("DEF", "DEFCorp.", "NewYork"),
    ("ABC", "ABCInc.", "SanDiego"),
)

_PAPER_ORDERS = (
    (28904, "XYZ", 2400),
    (87456, "ABC", 200000),
    (111, "XYZ", 100),
    (222, "DEF", 30000),
)


def _sharded_paper_source(shards, stats):
    """The Fig. 2 database as ``shards`` hash-partitioned members.

    ``orders`` is hash-partitioned on ``cid`` (each customer's orders
    land together, so the pushed Q1 join stays member-local);
    ``customer`` replicates to every member.
    """
    from repro import Database, RelationalWrapper
    from repro.sources import Partition, ShardedSource, hash_shard

    members = []
    for index in range(shards):
        db = Database("paper{}".format(index), stats=stats)
        db.run("CREATE TABLE customer (id TEXT, name TEXT, addr TEXT,"
               " PRIMARY KEY (id))")
        db.run("CREATE TABLE orders (orid INT, cid TEXT, value INT,"
               " PRIMARY KEY (orid))")
        for cid, name, addr in _PAPER_CUSTOMERS:
            db.run("INSERT INTO customer VALUES ('{}', '{}', '{}')".format(
                cid, name, addr))
        for orid, cid, value in _PAPER_ORDERS:
            if hash_shard(cid, shards) == index:
                db.run("INSERT INTO orders VALUES ({}, '{}', {})".format(
                    orid, cid, value))
        members.append(
            RelationalWrapper(db, server_name="paper{}".format(index))
            .register_document("root1", "customer")
            .register_document("root2", "orders", element_label="order")
        )
    return ShardedSource(
        members,
        Partition("orders", "cid", "hash"),
        replicated=("customer",),
        server_name="paper",
        obs=stats,
    )


def _faulty_source(wrapper, profile, seed, stats):
    """Wrap the paper wrapper per a named fault profile (seeded)."""
    from repro.resilience import (
        CircuitBreaker,
        FaultInjectingSource,
        ManualClock,
        ResilientSource,
        RetryPolicy,
        Timeout,
    )

    clock = ManualClock()
    faulty = FaultInjectingSource(
        wrapper, clock=clock, seed=seed, obs=stats
    )
    retry = RetryPolicy(attempts=3, base_delay=0.05, sleep=clock.sleep)
    if profile == "transient":
        faulty.fail_pulls_randomly("root1", 0.4)
        faulty.fail_pulls_randomly("root2", 0.4)
        faulty.fail_sql(times=1)
        return ResilientSource(
            faulty, retry=retry, on_error="degrade", obs=stats
        )
    if profile == "slow":
        faulty.slow_pull("root1", 0, delay=0.5, times=1)
        faulty.slow_pull("root2", 1, delay=0.5, times=1)
        return ResilientSource(
            faulty, retry=retry, timeout=Timeout(0.25, clock=clock),
            on_error="degrade", obs=stats,
        )
    if profile == "outage":
        # Two consecutive permanent failures trip the breaker (threshold
        # 2): the rest of root2 is circuit-rejected and the stream ends
        # with a terminal stub.
        faulty.fail_pull("root2", 0, kind="permanent")
        faulty.fail_pull("root2", 1, kind="permanent")
        faulty.fail_sql(kind="permanent", match="orders")
        breaker = CircuitBreaker(
            failure_threshold=2, cooldown=5.0, clock=clock
        )
        return ResilientSource(
            faulty, retry=retry, breaker=breaker,
            on_error="degrade", obs=stats,
        )
    raise ValueError(
        "unknown fault profile {!r} (choose from {})".format(
            profile, "/".join(FAULT_PROFILES)
        )
    )


def _pop_option(args, name):
    """Extract ``--name=value`` from an argument list."""
    value = None
    rest = []
    for arg in args:
        if arg.startswith(name + "="):
            value = arg.split("=", 1)[1]
        else:
            rest.append(arg)
    return value, rest


def _fault_options(args):
    profile, args = _pop_option(args, "--fault-profile")
    seed, args = _pop_option(args, "--fault-seed")
    if profile is not None and profile not in FAULT_PROFILES:
        raise SystemExit(
            "unknown fault profile {!r} (choose from {})".format(
                profile, "/".join(FAULT_PROFILES)
            )
        )
    return profile, int(seed or 0), args


def _optimizer_options(args):
    """Extract ``--no-optimizer`` (CLI default: cost-based planning on)."""
    cost = "--no-optimizer" not in args
    args = [arg for arg in args if arg != "--no-optimizer"]
    return cost, args


def _block_options(args):
    """Extract ``--block-size=N`` (default: the mediator's own default,
    :data:`repro.engine.block.DEFAULT_BLOCK_SIZE`; ``1`` is the seed's
    tuple-at-a-time mode)."""
    size, args = _pop_option(args, "--block-size")
    if size is None:
        return None, args
    try:
        size = int(size)
    except ValueError:
        raise SystemExit("--block-size expects an integer, got {!r}".format(
            size))
    if size < 1:
        raise SystemExit("--block-size must be >= 1, got {}".format(size))
    return size, args


def _shard_options(args):
    """Extract ``--shards=K`` (default: the single unsharded source)."""
    shards, args = _pop_option(args, "--shards")
    if shards is None:
        return None, args
    try:
        shards = int(shards)
    except ValueError:
        raise SystemExit("--shards expects an integer, got {!r}".format(
            shards))
    if shards < 1:
        raise SystemExit("--shards must be >= 1, got {}".format(shards))
    return shards, args


def _cache_options(args):
    """Extract ``--no-cache`` / ``--cache-size=N`` (CLI default: on)."""
    cache = "--no-cache" not in args
    args = [arg for arg in args if arg != "--no-cache"]
    size, args = _pop_option(args, "--cache-size")
    try:
        size = 128 if size is None else int(size)
    except ValueError:
        raise SystemExit("--cache-size expects an integer, got {!r}".format(
            size))
    if size < 0:
        raise SystemExit("--cache-size must be >= 0, got {}".format(size))
    return cache, size, args


Q1 = """
FOR $C IN source(root1)/customer
    $O IN document(root2)/order
WHERE $C/id/data() = $O/cid/data()
RETURN <CustRec> $C <OrderInfo> $O </OrderInfo> {$O} </CustRec> {$C}
"""


def cmd_demo(args=()):
    """Example 2.1, command for command, with traffic counters."""
    profile, seed, args = _fault_options(list(args))
    cache, cache_size, args = _cache_options(args)
    cost, args = _optimizer_options(args)
    block_size, args = _block_options(args)
    shards, args = _shard_options(args)
    stats, mediator = _paper_mediator(
        fault_profile=profile, fault_seed=seed,
        cache=cache, cache_size=cache_size, cost_optimizer=cost,
        block_size=block_size, shards=shards,
    )
    if profile is not None:
        # The scripted Example 2.1 walk assumes every step lands on a
        # node; under injected faults parts of the view may be missing,
        # so the faulty demo walks whatever survived instead.
        return _demo_faulty(stats, mediator, profile, seed)

    def say(command, node):
        label = node.fl() if node is not None else "⊥"
        oid = node.oid if node is not None else "-"
        print("  {:22s} -> {:10s} {}   [shipped={}]".format(
            command, str(label), oid, stats.get("tuples_shipped")))

    print("Example 2.1 (paper Section 2) against the Fig. 2 database:\n")
    p0 = mediator.query(Q1)
    say("p0 = q(Q1)", p0)
    p1 = p0.d()
    say("p1 = d(p0)", p1)
    p2 = p1.r()
    say("p2 = r(p1)", p2)
    p3 = p1.d()
    say("p3 = d(p1)", p3)
    print()
    p4 = p0.q(
        'FOR $P IN document(root)/CustRec'
        ' WHERE $P/customer/name/data() < "B" RETURN $P'
    )
    say("p4 = q(Q2, p0)", p4)
    p5 = p4.d()
    say("p5 = d(p4)", p5)
    p6 = p5.d()
    say("p6 = d(p5)", p6)
    p7 = p6.r()
    say("p7 = r(p6)", p7)
    print()
    p9 = p5.q(
        "FOR $O IN document(root)/OrderInfo"
        " WHERE $O/order/value/data() < 500 RETURN $O"
    )
    say("p9 = q(Q3, p5)", p9)
    first = p9.d()
    say("d(p9)", first)
    return 0


def _demo_faulty(stats, mediator, profile, seed):
    """Walk Q1's degraded result and report what the faults cost."""
    from repro.resilience import ERROR_LABEL

    print("Example 2.1 under fault profile {!r} (seed {}):\n".format(
        profile, seed))
    totals = {"nodes": 0, "stubs": 0}

    def walk(node, depth):
        while node is not None:
            label = str(node.fl())
            totals["nodes"] += 1
            if label == ERROR_LABEL:
                totals["stubs"] += 1
            print("  {}{}".format("  " * depth, label))
            walk(node.d(), depth + 1)
            node = node.r()

    walk(mediator.query(Q1).d(), 0)
    print("\n  nodes={} degraded_stubs={}".format(
        totals["nodes"], totals["stubs"]))
    print("  faults_injected={} source_retries={} source_timeouts={} "
          "degraded_results={} breaker_transitions={}".format(
              stats.get("faults_injected"), stats.get("source_retries"),
              stats.get("source_timeouts"), stats.get("degraded_results"),
              stats.get("breaker_transitions")))
    for source in mediator.catalog.sources():
        health = getattr(source, "resilience_health", None)
        if callable(health):
            print("  health: {}".format(health()))
    return 0


def cmd_figures(args=()):
    """Regenerate the paper's artifacts to stdout."""
    import subprocess

    return subprocess.call(
        [sys.executable, "-m", "pytest",
         "benchmarks/test_figures.py", "-q", "-s"]
    )


def cmd_bench(args=()):
    """Print the experiment series (no pytest-benchmark timings)."""
    import subprocess

    return subprocess.call(
        [sys.executable, "-m", "pytest", "benchmarks/", "-q", "-s",
         "--benchmark-disable", "--ignore=benchmarks/test_figures.py"]
    )


def cmd_explain(args=()):
    """EXPLAIN ANALYZE a query against the paper's Fig. 2 database."""
    from repro.errors import MixError
    from repro.obs import trace_to_json

    args = list(args)
    as_json = "--json" in args
    while "--json" in args:
        args.remove("--json")
    analyze_first = "--analyze" in args
    while "--analyze" in args:
        args.remove("--analyze")
    profile, seed, args = _fault_options(args)
    cache, cache_size, args = _cache_options(args)
    cost, args = _optimizer_options(args)
    block_size, args = _block_options(args)
    shards, args = _shard_options(args)
    query = Q1
    if args:
        try:
            with open(args[0], "r", encoding="utf-8") as handle:
                query = handle.read()
        except OSError as exc:
            print("explain: cannot read {}: {}".format(args[0], exc),
                  file=sys.stderr)
            return 1
    __, mediator = _paper_mediator(
        fault_profile=profile, fault_seed=seed,
        cache=cache, cache_size=cache_size, cost_optimizer=cost,
        block_size=block_size, shards=shards,
    )
    if analyze_first:
        analyzed = mediator.analyze_sources()
        for server, count in sorted(analyzed.items()):
            print("-- analyzed[{}]: {} tables".format(server, count))
    try:
        print(mediator.explain(query))
    except MixError as exc:
        print("explain: {}".format(exc), file=sys.stderr)
        return 1
    if as_json:
        # One navigation into the (fresh) virtual result: its trace links
        # the d command to the operator pulls and the SQL they caused.
        root = mediator.query(query)
        root.d()
        print()
        print(trace_to_json(root.last_trace()))
    return 0


def cmd_lint(args=()):
    """Schema-aware static analysis of XQuery text (no execution).

    With file arguments, lints each file against the paper catalog;
    without, lints the built-in Q1.  Exit status 1 means at least one
    error-severity diagnostic (parse failures included); ``--strict``
    extends that to warnings, for CI gates over example corpora.
    """
    from repro.analysis import has_errors, render_json, render_text
    from repro.errors import MixError

    args = list(args)
    as_json = "--json" in args
    while "--json" in args:
        args.remove("--json")
    strict = "--strict" in args
    while "--strict" in args:
        args.remove("--strict")
    analyze_first = "--analyze" in args
    while "--analyze" in args:
        args.remove("--analyze")
    __, mediator = _paper_mediator()
    if analyze_first:
        mediator.analyze_sources()
    inputs = []
    if args:
        for path in args:
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    inputs.append((path, handle.read()))
            except OSError as exc:
                print("lint: cannot read {}: {}".format(path, exc),
                      file=sys.stderr)
                return 1
    else:
        inputs.append(("<Q1>", Q1))
    status = 0
    for name, text in inputs:
        try:
            diagnostics = mediator.lint(text)
        except MixError as exc:
            print("lint: {}: {}".format(name, exc), file=sys.stderr)
            status = 1
            continue
        for diag in diagnostics:
            diag.source = name
        if as_json:
            print(render_json(diagnostics))
        elif diagnostics:
            print(render_text(diagnostics))
        else:
            print("{}: clean".format(name))
        if has_errors(diagnostics):
            status = 1
        elif strict and diagnostics:
            status = 1
    return status


def cmd_check_plan(args=()):
    """Verify a query's plan after every compilation stage.

    Compiles the query (default: the built-in Q1) through
    translate → Table-2 rewrites → SQL split against the paper catalog
    and runs the static plan verifier after each stage; the first
    violated dataflow invariant fails the command, naming the stage and
    diagnostic code.
    """
    from repro.errors import MixError

    args = list(args)
    cost, args = _optimizer_options(args)
    query = Q1
    if args:
        try:
            with open(args[0], "r", encoding="utf-8") as handle:
                query = handle.read()
        except OSError as exc:
            print("check-plan: cannot read {}: {}".format(args[0], exc),
                  file=sys.stderr)
            return 1
    __, mediator = _paper_mediator(cost_optimizer=cost)
    try:
        report = mediator.verify_query(query)
    except MixError as exc:
        print("check-plan: {}".format(exc), file=sys.stderr)
        return 1
    for stage in report.stages:
        print("  {:40s} {}".format(
            stage.name, "ok" if stage.ok else "FAILED"))
        for diag in stage.diagnostics:
            print("    " + diag.render())
    print("-- verified: {} stages{}".format(
        report.stage_count, "" if report.ok else " (FAILED)"))
    return 0 if report.ok else 1


def cmd_check_rules(args=()):
    """Certify the rewrite rule set against the generated plan corpus.

    Runs :func:`repro.analysis.certify_rules` over the Table-2
    ``DEFAULT_RULES`` plus any ``--rules=module:attr`` extension set
    (the attribute must be an iterable of rule objects, e.g.
    ``--rules=repro.analysis.defect_rules:DEFECT_RULES``).  Prints the
    per-rule verdicts (``--json`` for the machine-readable report) and
    exits 1 when any rule fails certification, 2 on unusable arguments.
    """
    import importlib

    from repro.analysis import certify_rules
    from repro.errors import MixError

    args = list(args)
    as_json = "--json" in args
    while "--json" in args:
        args.remove("--json")
    rules_spec, args = _pop_option(args, "--rules")
    if args:
        print("check-rules: unexpected argument {!r}".format(args[0]),
              file=sys.stderr)
        return 2
    extension = ()
    if rules_spec is not None:
        module_name, sep, attr = rules_spec.partition(":")
        if not sep or not module_name or not attr:
            print("check-rules: --rules expects module:attr, got "
                  "{!r}".format(rules_spec), file=sys.stderr)
            return 2
        try:
            module = importlib.import_module(module_name)
            extension = tuple(getattr(module, attr))
        except (ImportError, AttributeError, TypeError) as exc:
            print("check-rules: cannot load {!r}: {}".format(
                rules_spec, exc), file=sys.stderr)
            return 2
    try:
        report = certify_rules(extension_rules=extension)
    except MixError as exc:
        print("check-rules: {}".format(exc), file=sys.stderr)
        return 1
    print(report.render_json() if as_json else report.render_text())
    return 0 if report.error_count == 0 else 1


def cmd_sql(args=()):
    """A tiny SQL shell against the paper's Fig. 2 database.

    Each quoted command-line argument is one statement; with none,
    statements are read from stdin (one per line).  ``ANALYZE`` works
    here exactly as in any source database: it (re)collects the
    optimizer statistics that cost-based planning and ``est=``
    estimates feed on.
    """
    from repro.errors import MixError

    statements = [a for a in args if a.strip()]
    if not statements:
        statements = [line for line in sys.stdin if line.strip()]
    db = _paper_database()
    for sql in statements:
        sql = sql.strip().rstrip(";").strip()
        if not sql or sql.startswith("--"):
            continue
        print("sql> {}".format(sql))
        try:
            if sql.upper().startswith("SELECT"):
                cursor = db.execute(sql)
                count = 0
                for row in cursor:
                    print("  " + " | ".join(str(v) for v in row))
                    count += 1
                print("-- {} rows".format(count))
            elif sql.upper().startswith("ANALYZE"):
                print("-- {} tables analyzed".format(db.run(sql)))
            else:
                print("-- {} rows affected".format(db.run(sql)))
        except MixError as exc:
            print("sql: {}".format(exc), file=sys.stderr)
            return 1
    return 0


def _int_option(args, name, default):
    """Extract ``--name=N`` as an int with a usage error on junk."""
    value, args = _pop_option(args, name)
    if value is None:
        return default, args
    try:
        return int(value), args
    except ValueError:
        raise SystemExit("{} expects an integer, got {!r}".format(
            name, value))


def cmd_serve(args=()):
    """Run the concurrent mediator server over the paper database.

    Serves QDOM navigation, query-in-place, the SQL shell, and EXPLAIN
    over the JSON-lines protocol until interrupted.  The multi-level
    cache is on (all sessions share it); ``--no-cache`` switches it
    off.
    """
    from repro.server import MediatorService, MixServer, ServerLimits

    args = list(args)
    cache, cache_size, args = _cache_options(args)
    cost, args = _optimizer_options(args)
    block_size, args = _block_options(args)
    host, args = _pop_option(args, "--host")
    port, args = _int_option(args, "--port", 4617)
    max_sessions, args = _int_option(args, "--max-sessions", 512)
    max_inflight, args = _int_option(args, "--max-inflight", 64)
    from repro import Instrument, Mediator, RelationalWrapper

    stats = Instrument()
    db = _paper_database(stats)
    wrapper = (
        RelationalWrapper(db)
        .register_document("root1", "customer")
        .register_document("root2", "orders", element_label="order")
    )
    mediator = Mediator(stats=stats, cache=cache, cache_size=cache_size,
                        cost_optimizer=cost,
                        block_size=block_size).add_source(wrapper)
    service = MediatorService(
        mediator,
        limits=ServerLimits(max_sessions=max_sessions,
                            max_inflight=max_inflight),
        database=db,
    )
    server = MixServer(service, (host or "127.0.0.1", port))
    bound_host, bound_port = server.address
    print("repro.server listening on {}:{} "
          "(max_sessions={}, max_inflight={}); Ctrl-C stops".format(
              bound_host, bound_port, max_sessions, max_inflight))
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
        print("\nserved {} requests ({} rejected), "
              "{} sessions opened".format(
                  stats.get("serve_requests"),
                  stats.get("serve_rejected"),
                  stats.get("serve_sessions_opened")))
    return 0


def cmd_bench_serve(args=()):
    """E-SERVE: closed-loop load against an in-process server.

    N concurrent client sessions (default 120 — the acceptance floor
    is 100) issue zipf-distributed queries plus navigation walks over a
    scaled customers/orders workload through the full wire path, and
    the measured throughput and latency percentiles are printed (and,
    with ``--bench-json``, recorded as ``BENCH_SERVE.json``).
    """
    from repro import Instrument, Mediator
    from repro.server import (
        MediatorService, ServerLimits, run_load, write_bench_json,
    )
    from repro.workloads import build_customers_orders

    args = list(args)
    cache, cache_size, args = _cache_options(args)
    cost, args = _optimizer_options(args)
    block_size, args = _block_options(args)
    clients, args = _int_option(args, "--clients", 120)
    interactions, args = _int_option(args, "--interactions", 8)
    seed, args = _int_option(args, "--seed", 0)
    customers, args = _int_option(args, "--customers", 40)
    orders, args = _int_option(args, "--orders", 3)
    think, args = _pop_option(args, "--think")
    zipf, args = _pop_option(args, "--zipf")
    bench_dir = None
    if "--bench-json" in args:
        bench_dir = "."
        args = [a for a in args if a != "--bench-json"]
    explicit_dir, args = _pop_option(args, "--bench-json")
    if explicit_dir is not None:
        bench_dir = explicit_dir
    built = build_customers_orders(
        n_customers=customers, orders_per_customer=orders,
    )
    mediator = Mediator(
        stats=built.stats, cache=cache, cache_size=cache_size,
        cost_optimizer=cost, block_size=block_size,
    ).add_source(built.wrapper)
    service = MediatorService(
        mediator,
        limits=ServerLimits(max_sessions=clients + 8,
                            max_inflight=clients + 8),
        database=built.database,
    )
    report = run_load(
        service, clients=clients, interactions=interactions,
        think_time=float(think or 0.0), zipf_s=float(zipf or 1.1),
        seed=seed,
    )
    counters = report.counters()
    print("== E-SERVE: {} concurrent sessions, {} interactions each "
          "==".format(clients, interactions))
    print("  requests={requests} errors={errors} rejected={rejected}"
          .format(**counters))
    print("  throughput={throughput_rps} req/s  p50={p50_ms}ms  "
          "p95={p95_ms}ms  p99={p99_ms}ms".format(**counters))
    print("  plan_cache={} nav_memo={}".format(
        built.stats.get("plan_cache_hits"),
        built.stats.get("nav_memo_hits")))
    if report.errors:
        print("bench-serve: {} requests failed".format(report.errors),
              file=sys.stderr)
        return 1
    if bench_dir is not None:
        path = write_bench_json(bench_dir, [("serve", report)])
        print("  wrote {}".format(path))
    return 0


def main(argv=None):
    argv = argv if argv is not None else sys.argv[1:]
    commands = {
        "demo": cmd_demo,
        "figures": cmd_figures,
        "bench": cmd_bench,
        "explain": cmd_explain,
        "sql": cmd_sql,
        "lint": cmd_lint,
        "check-plan": cmd_check_plan,
        "check-rules": cmd_check_rules,
        "serve": cmd_serve,
        "bench-serve": cmd_bench_serve,
    }
    if not argv or argv[0] not in commands:
        print(__doc__)
        print("usage: python -m repro"
              " {demo|figures|bench|explain|sql|lint|check-plan"
              "|check-rules|serve|bench-serve}"
              " [--fault-profile=" + "|".join(FAULT_PROFILES) +
              "] [--fault-seed=N] [--no-cache] [--cache-size=N]"
              " [--no-optimizer] [--block-size=N] [--shards=K] [--analyze]"
              " [--json] [--strict] [--rules=module:attr]"
              " [--host=H] [--port=N] [--clients=N] [--bench-json[=DIR]]")
        return 2
    return commands[argv[0]](argv[1:])


if __name__ == "__main__":
    sys.exit(main())
