"""Command-line entry point: ``python -m repro <command>``.

Commands:

* ``demo``     — run the paper's Example 2.1 interactively-ish, printing
  every QDOM command and what it returned;
* ``figures``  — regenerate the paper's figure artifacts (plans, result
  trees, the rewriting trace, and the Fig. 22 SQL) to stdout;
* ``bench``    — print the quantitative experiment series without
  needing pytest;
* ``explain``  — EXPLAIN ANALYZE the paper's Q1 (or a query read from a
  file with ``explain <path>``) against the Fig. 2 database; ``--json``
  additionally prints the JSON trace of a single ``d`` navigation.
"""

from __future__ import annotations

import sys


def _paper_mediator():
    from repro import Database, Instrument, Mediator, RelationalWrapper

    stats = Instrument()
    db = Database("paper", stats=stats)
    db.run("CREATE TABLE customer (id TEXT, name TEXT, addr TEXT,"
           " PRIMARY KEY (id))")
    db.run("CREATE TABLE orders (orid INT, cid TEXT, value INT,"
           " PRIMARY KEY (orid))")
    db.run("INSERT INTO customer VALUES ('XYZ', 'XYZInc.', 'LosAngeles'),"
           " ('DEF', 'DEFCorp.', 'NewYork'), ('ABC', 'ABCInc.', 'SanDiego')")
    db.run("INSERT INTO orders VALUES (28904, 'XYZ', 2400),"
           " (87456, 'ABC', 200000), (111, 'XYZ', 100), (222, 'DEF', 30000)")
    wrapper = (
        RelationalWrapper(db)
        .register_document("root1", "customer")
        .register_document("root2", "orders", element_label="order")
    )
    return stats, Mediator(stats=stats).add_source(wrapper)


Q1 = """
FOR $C IN source(root1)/customer
    $O IN document(root2)/order
WHERE $C/id/data() = $O/cid/data()
RETURN <CustRec> $C <OrderInfo> $O </OrderInfo> {$O} </CustRec> {$C}
"""


def cmd_demo(args=()):
    """Example 2.1, command for command, with traffic counters."""
    stats, mediator = _paper_mediator()

    def say(command, node):
        label = node.fl() if node is not None else "⊥"
        oid = node.oid if node is not None else "-"
        print("  {:22s} -> {:10s} {}   [shipped={}]".format(
            command, str(label), oid, stats.get("tuples_shipped")))

    print("Example 2.1 (paper Section 2) against the Fig. 2 database:\n")
    p0 = mediator.query(Q1)
    say("p0 = q(Q1)", p0)
    p1 = p0.d()
    say("p1 = d(p0)", p1)
    p2 = p1.r()
    say("p2 = r(p1)", p2)
    p3 = p1.d()
    say("p3 = d(p1)", p3)
    print()
    p4 = p0.q(
        'FOR $P IN document(root)/CustRec'
        ' WHERE $P/customer/name/data() < "B" RETURN $P'
    )
    say("p4 = q(Q2, p0)", p4)
    p5 = p4.d()
    say("p5 = d(p4)", p5)
    p6 = p5.d()
    say("p6 = d(p5)", p6)
    p7 = p6.r()
    say("p7 = r(p6)", p7)
    print()
    p9 = p5.q(
        "FOR $O IN document(root)/OrderInfo"
        " WHERE $O/order/value/data() < 500 RETURN $O"
    )
    say("p9 = q(Q3, p5)", p9)
    first = p9.d()
    say("d(p9)", first)
    return 0


def cmd_figures(args=()):
    """Regenerate the paper's artifacts to stdout."""
    import subprocess

    return subprocess.call(
        [sys.executable, "-m", "pytest",
         "benchmarks/test_figures.py", "-q", "-s"]
    )


def cmd_bench(args=()):
    """Print the experiment series (no pytest-benchmark timings)."""
    import subprocess

    return subprocess.call(
        [sys.executable, "-m", "pytest", "benchmarks/", "-q", "-s",
         "--benchmark-disable", "--ignore=benchmarks/test_figures.py"]
    )


def cmd_explain(args=()):
    """EXPLAIN ANALYZE a query against the paper's Fig. 2 database."""
    from repro.errors import MixError
    from repro.obs import trace_to_json

    args = list(args)
    as_json = "--json" in args
    while "--json" in args:
        args.remove("--json")
    query = Q1
    if args:
        try:
            with open(args[0], "r", encoding="utf-8") as handle:
                query = handle.read()
        except OSError as exc:
            print("explain: cannot read {}: {}".format(args[0], exc),
                  file=sys.stderr)
            return 1
    __, mediator = _paper_mediator()
    try:
        print(mediator.explain(query))
    except MixError as exc:
        print("explain: {}".format(exc), file=sys.stderr)
        return 1
    if as_json:
        # One navigation into the (fresh) virtual result: its trace links
        # the d command to the operator pulls and the SQL they caused.
        root = mediator.query(query)
        root.d()
        print()
        print(trace_to_json(root.last_trace()))
    return 0


def main(argv=None):
    argv = argv if argv is not None else sys.argv[1:]
    commands = {
        "demo": cmd_demo,
        "figures": cmd_figures,
        "bench": cmd_bench,
        "explain": cmd_explain,
    }
    if not argv or argv[0] not in commands:
        print(__doc__)
        print("usage: python -m repro {demo|figures|bench|explain}")
        return 2
    return commands[argv[0]](argv[1:])


if __name__ == "__main__":
    sys.exit(main())
