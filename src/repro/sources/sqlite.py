"""A ``sqlite3``-backed relational wrapper.

The mediator's relational protocol was designed against the in-process
:class:`repro.relational.Database`; this wrapper speaks the same
protocol over a real SQLite database (stdlib ``sqlite3``, no new
dependency): documents as ``list``-rooted tables of tuple objects with
key-derived oids (paper Fig. 2), pushed-down SQL through
:meth:`execute_sql` with every shipped row counted, ``data_version()``
for the result caches, ``set_block_size`` batching, and ``ANALYZE``
min/max statistics for shard pruning.

It is usable standalone (``Mediator().add_source(SqliteWrapper(...))``)
or as a member of a :class:`~repro.sources.shard.ShardedSource` — each
member then owns its *own* connection, which is what lets a scatter's
member statements run concurrently.
"""

from __future__ import annotations

import sqlite3

from repro import stats as statnames
from repro.errors import SourceError
from repro.optimizer.statistics import ColumnStatistics, TableStatistics
from repro.relational.cursor import Cursor
from repro.relational.schema import Column, TableSchema
from repro.relational.types import TEXT, TYPE_NAMES
from repro.sources.base import Source
from repro.stats import StatsRegistry
from repro.xmltree.tree import Node, OidGenerator

#: Rows crossing the sqlite C boundary per generator step.
_FETCH_BATCH = 256


class SqliteWrapper(Source):
    """Wraps a SQLite database as an XML source.

    Args:
        path: database path (default in-memory).
        server_name: the catalog server name.
        stats: the :class:`~repro.obs.Instrument` shipped rows and SQL
            statements are counted on (one is created when omitted).

    Example::

        wrapper = SqliteWrapper(server_name="sq")
        wrapper.run("CREATE TABLE customer (id INTEGER PRIMARY KEY, "
                    "name TEXT)")
        wrapper.run("INSERT INTO customer VALUES (1, 'ACME')")
        wrapper.register_document("root1", "customer")
    """

    def __init__(self, path=":memory:", server_name="sqlite", stats=None):
        # check_same_thread=False: scatter-gather fetches member blocks
        # from pool threads; the sqlite3 module serializes access to
        # the connection itself.
        self.connection = sqlite3.connect(
            path, check_same_thread=False
        )
        self.server_name = server_name
        self.stats = stats if stats is not None else StatsRegistry()
        self._documents = {}   # doc_id -> (table name, element label)
        self._oids = OidGenerator("q")
        self._block_size = 1
        self._statistics = {}  # table -> (TableStatistics, version stamp)

    # -- configuration -------------------------------------------------------------

    def register_document(self, doc_id, table_name, element_label=None):
        """Export ``table_name`` as the document ``doc_id``."""
        self.describe_table(table_name)  # validate early
        self._documents[doc_id] = (table_name, element_label or table_name)
        return self

    def set_block_size(self, size):
        """Batch document-iteration fetches to ``size`` rows (the same
        duck protocol as :class:`RelationalWrapper`)."""
        size = int(size)
        self._block_size = size if size > 1 else 1
        return self

    def run(self, sql, params=()):
        """Execute DDL/DML (committed immediately); returns rowcount."""
        try:
            cursor = self.connection.execute(sql, params)
            self.connection.commit()
        except sqlite3.Error as exc:
            raise SourceError(
                "sqlite rejected statement: {}".format(exc),
                sql=sql,
                source=self.server_name,
            )
        return cursor.rowcount

    def run_many(self, sql, rows):
        """``executemany`` + commit, for bulk loading."""
        try:
            self.connection.executemany(sql, rows)
            self.connection.commit()
        except sqlite3.Error as exc:
            raise SourceError(
                "sqlite rejected batch statement: {}".format(exc),
                sql=sql,
                source=self.server_name,
            )
        return self

    # -- versioning ----------------------------------------------------------------

    def data_version(self):
        """Write fingerprint: this connection's change counter plus the
        file's cross-connection ``PRAGMA data_version``."""
        pragma = self.connection.execute("PRAGMA data_version").fetchone()
        return (
            "sqlite",
            self.server_name,
            self.connection.total_changes,
            pragma[0] if pragma else 0,
        )

    # -- statistics (ANALYZE) ------------------------------------------------------

    def analyze(self, table_name=None):
        """Collect row-count/NDV/min-max statistics via SQL.

        Returns the number of tables profiled.  Statistics are stamped
        with :meth:`data_version` and go stale on any write, matching
        the in-process wrapper's freshness rule.
        """
        tables = [table_name] if table_name else self._user_tables()
        stamp = self.data_version()
        for table in tables:
            stats = self._collect(table)
            self._statistics[table] = (stats, stamp)
            self.stats.incr(statnames.TABLES_ANALYZED)
        return len(tables)

    def table_statistics(self, table_name):
        """Fresh statistics for ``table_name``, or ``None``."""
        entry = self._statistics.get(table_name)
        if entry is None:
            return None
        stats, stamp = entry
        return stats if stamp == self.data_version() else None

    def _user_tables(self):
        rows = self.connection.execute(
            "SELECT name FROM sqlite_master WHERE type = 'table' "
            "AND name NOT LIKE 'sqlite_%' ORDER BY name"
        ).fetchall()
        return [r[0] for r in rows]

    def _collect(self, table_name):
        schema = self.describe_table(table_name)
        quoted = _quote(table_name)
        (row_count,) = self.connection.execute(
            "SELECT COUNT(*) FROM {}".format(quoted)
        ).fetchone()
        columns = {}
        for column in schema.columns:
            q = _quote(column.name)
            non_null, ndv, lo, hi = self.connection.execute(
                "SELECT COUNT({0}), COUNT(DISTINCT {0}), MIN({0}), "
                "MAX({0}) FROM {1}".format(q, quoted)
            ).fetchone()
            null_fraction = (
                (row_count - non_null) / row_count if row_count else 0.0
            )
            columns[column.name] = ColumnStatistics(
                column.name, ndv, lo, hi, null_fraction
            )
        return TableStatistics(
            table_name, row_count, columns, version=self.data_version()
        )

    # -- Source interface ----------------------------------------------------------

    def document_ids(self):
        return sorted(self._documents)

    def table_for_document(self, doc_id):
        return self._doc_entry(doc_id)[0]

    def label_for_document(self, doc_id):
        return self._doc_entry(doc_id)[1]

    def _doc_entry(self, doc_id):
        try:
            return self._documents[doc_id]
        except KeyError:
            raise SourceError(
                "wrapper {!r} exports no document {!r}".format(
                    self.server_name, doc_id
                ),
                doc_id=doc_id,
                source=self.server_name,
            )

    def iter_document_children(self, doc_id):
        """Cursor-driven tuple objects, one per row (optionally fetched
        block-at-a-time under ``set_block_size``)."""
        table_name, label = self._doc_entry(doc_id)
        schema = self.describe_table(table_name)
        stats = self.stats
        span_name = "wrap({})".format(doc_id)
        span_key = "wrap:{}:{}".format(self.server_name, doc_id)
        with self._span(stats, span_name, span_key, table_name):
            cursor = self.execute_sql(
                "SELECT * FROM {}".format(_quote(table_name))
            )
        if self._block_size > 1:
            size = self._block_size
            while True:
                with self._span(stats, span_name, span_key, table_name):
                    rows = cursor.fetch_block(size)
                    if not rows:
                        return
                    stats.incr(statnames.SOURCE_NAVIGATIONS, len(rows))
                    elements = [
                        self.row_to_element(schema, row, label=label)
                        for row in rows
                    ]
                for element in elements:
                    yield element
            return
        rows = iter(cursor)
        while True:
            with self._span(stats, span_name, span_key, table_name):
                try:
                    row = next(rows)
                except StopIteration:
                    return
                stats.incr(statnames.SOURCE_NAVIGATIONS)
                element = self.row_to_element(schema, row, label=label)
            yield element

    @staticmethod
    def _span(stats, name, key, table_name):
        return stats.operator_span(
            name, key=key, kind="source", table=table_name
        )

    def materialize_document(self, doc_id):
        root = Node("&{}".format(doc_id), "list")
        for child in self.iter_document_children(doc_id):
            root.append(child)
        return root

    def supports_sql(self):
        return True

    def execute_sql(self, sql):
        self.stats.incr(statnames.SQL_QUERIES)
        try:
            cursor = self.connection.execute(sql)
        except sqlite3.Error as exc:
            raise SourceError(
                "sqlite rejected SQL: {}".format(exc),
                sql=sql,
                source=self.server_name,
            )
        if cursor.description is None:  # DDL/DML pushed through
            self.connection.commit()
            return Cursor([], (), self.stats)
        names = [d[0] for d in cursor.description]
        return Cursor(names, self._row_stream(cursor, sql), self.stats)

    def _row_stream(self, cursor, sql):
        while True:
            try:
                batch = cursor.fetchmany(_FETCH_BATCH)
            except sqlite3.Error as exc:
                raise SourceError(
                    "sqlite failed mid-stream: {}".format(exc),
                    sql=sql,
                    source=self.server_name,
                )
            if not batch:
                return
            for row in batch:
                yield tuple(row)

    def describe_table(self, table_name):
        try:
            rows = self.connection.execute(
                "PRAGMA table_info({})".format(_quote(table_name))
            ).fetchall()
        except sqlite3.Error as exc:
            raise SourceError(
                "sqlite could not describe {!r}: {}".format(
                    table_name, exc
                ),
                source=self.server_name,
            )
        if not rows:
            raise SourceError(
                "sqlite server {!r} has no table {!r}".format(
                    self.server_name, table_name
                ),
                source=self.server_name,
            )
        columns = [
            Column(name, _column_type(declared))
            for __, name, declared, __, __, __ in rows
        ]
        key = [
            (pk, name) for __, name, __, __, __, pk in rows if pk
        ]
        primary_key = tuple(name for __, name in sorted(key))
        return TableSchema(table_name, columns, primary_key=primary_key)

    # -- element assembly (Fig. 2 layout, as RelationalWrapper) ---------------------

    def row_to_element(self, schema, row, label=None):
        element = Node(
            self.oid_for_row(schema, row), label or schema.name
        )
        for col, value in zip(schema.columns, row):
            if value is None:
                continue
            field = Node(self._oids.fresh(), col.name)
            field.append(Node(self._oids.fresh(), value))
            element.append(field)
        return element

    def oid_for_row(self, schema, row):
        key_idx = schema.key_indexes()
        if not key_idx:
            return self._oids.fresh()
        return "&" + "/".join(str(row[i]) for i in key_idx)

    def oid_to_key(self, table_name, oid):
        schema = self.describe_table(table_name)
        if not str(oid).startswith("&"):
            raise SourceError(
                "not a wrapper oid: {!r}".format(oid),
                source=self.server_name,
            )
        parts = str(oid)[1:].split("/")
        key_idx = schema.key_indexes()
        if len(parts) != len(key_idx):
            raise SourceError(
                "oid {!r} does not match the key of {!r}".format(
                    oid, table_name
                ),
                source=self.server_name,
            )
        return [
            schema.columns[i].type.accept(part)
            for i, part in zip(key_idx, parts)
        ]

    def close(self):
        self.connection.close()

    def __repr__(self):
        return "SqliteWrapper({}, docs={})".format(
            self.server_name, self._documents
        )


def _quote(identifier):
    return '"{}"'.format(str(identifier).replace('"', '""'))


def _column_type(declared):
    """Map a declared SQLite column type to the engine's type system.

    SQLite's type affinity accepts arbitrary declarations like
    ``VARCHAR(30)``; the leading word decides, unknown words fall back
    to TEXT (SQLite's own behavior for unparseable declarations is
    looser still).
    """
    token = str(declared or "").split("(")[0].strip().split()
    name = token[0].upper() if token else ""
    return TYPE_NAMES.get(name, TEXT)
