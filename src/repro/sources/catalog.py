"""The source catalog: document ids and server names to wrappers."""

from __future__ import annotations

from repro.errors import UnknownSourceError
from repro.sources.base import Source


class SourceCatalog:
    """What the engines consult to resolve ``mksrc`` and ``rQ`` leaves.

    Document ids are the paper's ``root1``/``root2`` (the ``&`` prefix is
    accepted and stripped); server names are the ``s`` of ``rQ(s, q, m)``.
    """

    def __init__(self):
        self._documents = {}   # doc_id -> Source
        self._servers = {}     # server name -> Source (supports_sql)

    # -- registration -------------------------------------------------------------

    def register(self, source):
        """Register all of a source's documents (and its server name)."""
        if not isinstance(source, Source):
            raise UnknownSourceError(
                "catalog accepts Source instances, got {!r}".format(source)
            )
        for doc_id in source.document_ids():
            self._documents[doc_id] = source
        server = getattr(source, "server_name", None)
        if server is not None and source.supports_sql():
            self._servers[server] = source
        return self

    def register_document(self, doc_id, source):
        """Register a single document explicitly."""
        self._documents[_normalize(doc_id)] = source
        return self

    # -- resolution ----------------------------------------------------------------

    def source_for(self, doc_id):
        try:
            return self._documents[_normalize(doc_id)]
        except KeyError:
            raise UnknownSourceError(
                "no source exports document {!r} (known: {})".format(
                    doc_id, sorted(self._documents)
                ),
                doc_id=_normalize(doc_id),
                known=sorted(self._documents),
            )

    def server(self, name):
        try:
            return self._servers[name]
        except KeyError:
            raise UnknownSourceError(
                "no relational server {!r} (known: {})".format(
                    name, sorted(self._servers)
                ),
                known=sorted(self._servers),
            )

    def has_document(self, doc_id):
        return _normalize(doc_id) in self._documents

    def document_ids(self):
        return sorted(self._documents)

    def sources(self):
        """The distinct registered source objects, in registration order."""
        seen = []
        for source in list(self._documents.values()) + list(
            self._servers.values()
        ):
            if not any(s is source for s in seen):
                seen.append(source)
        return seen

    def data_fingerprint(self):
        """Combined write-version of every registered source.

        ``None`` when any source is unversioned — see
        :func:`repro.cache.keys.data_fingerprint`.
        """
        from repro.cache.keys import data_fingerprint

        return data_fingerprint(self)

    # -- engine conveniences ------------------------------------------------------------

    def iter_children(self, doc_id):
        """Lazy child iterator of a document (navigation-driven path)."""
        return self.source_for(doc_id).iter_document_children(
            _normalize(doc_id)
        )

    def materialize(self, doc_id):
        """Full document tree (eager path)."""
        return self.source_for(doc_id).materialize_document(
            _normalize(doc_id)
        )


def _normalize(doc_id):
    doc_id = str(doc_id)
    return doc_id[1:] if doc_id.startswith("&") else doc_id
