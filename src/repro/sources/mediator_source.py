"""A MIX mediator acting as a source to another MIX mediator.

The paper, Section 4: "In the ideal case where the underlying source is
an XML source that supports navigation (e.g., a MIX mediator can be such
a source to another MIX mediator) client navigations are translated into
r and d commands sent to the source."

:class:`MediatorSource` exports views of a *lower* mediator as documents
of an *upper* one.  Child iteration is implemented with QDOM ``d``/``r``
commands against the lower mediator's virtual result, so the upper
mediator's laziness propagates through: navigating the upper view pulls
only as much of the lower view — and therefore only as much of the
ultimate relational sources — as needed.
"""

from __future__ import annotations

from repro import stats as statnames
from repro.errors import SourceError
from repro.xmltree.tree import Node
from repro.sources.base import Source


class MediatorSource(Source):
    """Expose another mediator's query results as navigable documents.

    Example::

        lower = Mediator().add_source(wrapper)
        federated = MediatorSource(lower, stats=stats)
        federated.register_view("custview", Q1_TEXT)
        upper = Mediator().add_source(federated)
        upper.query("FOR $R IN document(custview)/CustRec RETURN $R")
    """

    def __init__(self, mediator, stats=None):
        self.mediator = mediator
        self._stats = stats
        self._views = {}       # doc_id -> query text
        self._roots = {}       # doc_id -> cached QdomNode root

    # -- configuration -----------------------------------------------------------

    def register_view(self, doc_id, query_text):
        """Export the result of ``query_text`` as document ``doc_id``.

        The lower mediator runs the query lazily on first access.
        """
        self._views[doc_id] = query_text
        return self

    # -- Source interface -----------------------------------------------------------

    def document_ids(self):
        return sorted(self._views)

    def _root(self, doc_id):
        if doc_id not in self._views:
            raise SourceError(
                "mediator source exports no view {!r}".format(doc_id),
                doc_id=doc_id,
                source=type(self).__name__,
            )
        if doc_id not in self._roots:
            # Cache only after the lower query succeeded; a failed run
            # leaves no entry, so the next access retries cleanly.
            self._roots[doc_id] = self.mediator.query(self._views[doc_id])
        return self._roots[doc_id]

    def iter_document_children(self, doc_id):
        """Navigate the lower view with d/r commands, one child at a time."""
        stats = self._stats
        span_key = "medsrc:{}".format(doc_id)

        def pull(move):
            # Each lower-mediator navigation that lands on a node is one
            # forwarded command; the span ties it to the upper command
            # that demanded it.  A failing navigation invalidates the
            # cached root: the lower view's lazy stream is broken by the
            # escaped exception, and reusing it would silently truncate
            # later fetches (a poisoned cache entry).
            try:
                if stats is None:
                    return move()
                with stats.operator_span(
                    "medsrc({})".format(doc_id), key=span_key, kind="source"
                ):
                    node = move()
                    if node is not None:
                        stats.incr(statnames.SOURCE_NAVIGATIONS)
                    return node
            except Exception:
                self.invalidate(doc_id)
                raise

        node = pull(lambda: self._root(doc_id).d())
        while node is not None:
            yield _qdom_to_node(node)
            node = pull(node.r)

    def materialize_document(self, doc_id):
        root = Node("&{}".format(doc_id), "list")
        for child in self.iter_document_children(doc_id):
            root.append(child)
        return root

    def invalidate(self, doc_id=None):
        """Drop cached roots so the next access re-runs the lower query."""
        if doc_id is None:
            self._roots.clear()
        else:
            self._roots.pop(doc_id, None)

    def data_version(self):
        """Deliberately unversioned (``None``): the lower mediator's
        sources can change without this wrapper noticing, so result
        caches above must treat its data as always-possibly-stale."""
        return None


def _qdom_to_node(qdom_node):
    """A lazily materializing Node mirror of a QDOM subtree.

    Children are produced by lower-mediator navigation commands only as
    the upper engine's navigation reaches them.  Leaves carry their
    value as the label, per the shared data model.
    """

    def tail(start=qdom_node):
        child = start.d()
        while child is not None:
            yield _qdom_to_node(child)
            child = child.r()

    if qdom_node.d() is None:  # a leaf: label is the value
        return Node(str(qdom_node.oid), qdom_node.fl())
    return Node(str(qdom_node.oid), qdom_node.fl(), lazy_tail=tail())
