"""Source wrappers: the mediator's view of heterogeneous sources.

The paper's architecture (Fig. 1) has every source wrapped to offer an
XML view of itself.  Three wrappers are provided:

* :class:`~repro.sources.relational.RelationalWrapper` — exports each
  registered table as a document whose children are "tuple objects" with
  key-derived oids (Fig. 2), supports lazy cursor-driven child iteration,
  and executes pushed-down SQL for the ``rQ`` operator;
* :class:`~repro.sources.xmlfile.XmlFileSource` — an XML file/text
  source; per the paper's footnote, sources with no navigation support
  are fetched in one step;
* :class:`~repro.sources.mediator_source.MediatorSource` — another MIX
  mediator acting as a source, whose QDOM navigation is passed through.

The :class:`~repro.sources.catalog.SourceCatalog` maps document ids
(``root1``) and server names to wrappers and is what the engines consult.
"""

from repro.sources.base import Source
from repro.sources.catalog import SourceCatalog
from repro.sources.mediator_source import MediatorSource
from repro.sources.relational import RelationalWrapper
from repro.sources.xmlfile import XmlFileSource

__all__ = [
    "MediatorSource",
    "RelationalWrapper",
    "Source",
    "SourceCatalog",
    "XmlFileSource",
]
