"""Source wrappers: the mediator's view of heterogeneous sources.

The paper's architecture (Fig. 1) has every source wrapped to offer an
XML view of itself.  Three wrappers are provided:

* :class:`~repro.sources.relational.RelationalWrapper` — exports each
  registered table as a document whose children are "tuple objects" with
  key-derived oids (Fig. 2), supports lazy cursor-driven child iteration,
  and executes pushed-down SQL for the ``rQ`` operator;
* :class:`~repro.sources.xmlfile.XmlFileSource` — an XML file/text
  source; per the paper's footnote, sources with no navigation support
  are fetched in one step;
* :class:`~repro.sources.mediator_source.MediatorSource` — another MIX
  mediator acting as a source, whose QDOM navigation is passed through.

Two federation-oriented wrappers extend the set:

* :class:`~repro.sources.sqlite.SqliteWrapper` — the same relational
  protocol over a stdlib ``sqlite3`` database;
* :class:`~repro.sources.shard.ShardedSource` — one logical table
  horizontally partitioned across k member wrappers, scattered to in
  parallel and gathered through a block-aware merge (see
  :mod:`repro.sources.shard`).

The :class:`~repro.sources.catalog.SourceCatalog` maps document ids
(``root1``) and server names to wrappers and is what the engines consult.
"""

from repro.sources.base import Source
from repro.sources.catalog import SourceCatalog
from repro.sources.mediator_source import MediatorSource
from repro.sources.relational import RelationalWrapper
from repro.sources.shard import Partition, ShardedSource, hash_shard
from repro.sources.sqlite import SqliteWrapper
from repro.sources.xmlfile import XmlFileSource

__all__ = [
    "MediatorSource",
    "Partition",
    "RelationalWrapper",
    "ShardedSource",
    "Source",
    "SourceCatalog",
    "SqliteWrapper",
    "XmlFileSource",
    "hash_shard",
]
