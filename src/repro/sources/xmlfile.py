"""XML file/text sources.

Per the paper's footnote 2: "In the case that the underlying source does
not support any form of navigation then the mediator simply obtains the
full source result in one step."  An XML file is such a source: the first
access parses and materializes the whole document (counted once under
``doc_fetches``); iteration over children is then free.
"""

from __future__ import annotations

from repro.errors import SourceError
from repro.xmltree.parser import parse_xml
from repro.sources.base import Source

DOC_FETCHES = "doc_fetches"


class XmlFileSource(Source):
    """One or more XML documents served from text, files, or trees."""

    def __init__(self, stats=None):
        self._texts = {}
        self._trees = {}
        self._stats = stats
        self._data_epoch = 0  # bumped whenever a document is (re)registered

    # -- configuration ------------------------------------------------------------

    def add_text(self, doc_id, xml_text):
        """Register a document from XML text (parsed on first access)."""
        self._texts[doc_id] = xml_text
        self._trees.pop(doc_id, None)  # re-registration replaces the tree
        self._data_epoch += 1
        return self

    def add_file(self, doc_id, path):
        """Register a document from a file on disk."""
        with open(path, "r", encoding="utf-8") as handle:
            return self.add_text(doc_id, handle.read())

    def add_tree(self, doc_id, root):
        """Register an already-built tree (no fetch counted)."""
        self._trees[doc_id] = root
        self._data_epoch += 1
        return self

    def data_version(self):
        """Documents change only through (re)registration, so the
        registration epoch is an exact write version."""
        return ("xml", self._data_epoch)

    # -- Source interface ------------------------------------------------------------

    def document_ids(self):
        return sorted(set(self._texts) | set(self._trees))

    def materialize_document(self, doc_id):
        if doc_id in self._trees:
            return self._trees[doc_id]
        if doc_id not in self._texts:
            raise SourceError(
                "no document {!r}".format(doc_id), doc_id=doc_id,
                source=type(self).__name__,
            )
        if self._stats is not None:
            self._stats.incr(DOC_FETCHES)
            self._stats.event("doc_fetch", doc_id)
        # The cache entry is written only after a successful parse: a
        # failed fetch leaves no poisoned entry behind, so the next
        # access retries from the registered text.
        tree = parse_xml(self._texts[doc_id])
        self._trees[doc_id] = tree  # one-step fetch, then cached
        return tree

    def iter_document_children(self, doc_id):
        # No navigation support: fetch everything, then iterate.
        root = self.materialize_document(doc_id)
        return iter(root.children)
