"""Sharded tables: one logical table, k member wrappers, parallel
scatter-gather at the rQ boundary.

A :class:`ShardedSource` fronts k relational wrappers that each hold a
horizontal slice of one *partitioned* table (hash- or range-split on a
declared key, see :class:`Partition`) plus identical copies of any
*replicated* tables.  Behind the existing catalog protocol it looks
like a single relational source — the translator, rewriter, and
optimizer never learn the table is sharded:

* **scatter** — a pushed SELECT that references the partitioned table
  is sent to every member whose per-shard ``ANALYZE`` statistics cannot
  rule it out (:mod:`repro.optimizer.shardstats`); member statements
  run concurrently on a bounded ``concurrent.futures`` pool, each
  member stream prefetched block-at-a-time;
* **gather** — a :class:`~repro.relational.cursor.ShardMergeCursor`
  merges the member streams back into one cursor: member order for
  range partitioning (preserving the partition-key order), arrival
  order for hash partitioning, and an exact k-way merge whenever the
  statement carries an ``ORDER BY``;
* **degrade** — wrap the members with
  :func:`repro.resilience.shard_resilience` (each gets its *own*
  breaker) and a dead member costs one ``<mix:error>`` stub plus the
  surviving members' rows, never the whole query.

Replicated-only statements route to the first member; navigation over
the partitioned document concatenates the members' child streams in
member order.
"""

from __future__ import annotations

import threading
import zlib
from concurrent.futures import ThreadPoolExecutor

from repro import stats as statnames
from repro.errors import ShardError, SourceError
from repro.relational import ast
from repro.relational.cursor import (
    ARRIVAL,
    MERGE,
    ORDERED,
    Cursor,
    ShardMergeCursor,
    ShardStream,
)
from repro.relational.parser import parse_sql
from repro.sources.base import Source
from repro.xmltree.tree import Node

#: Partitioning schemes.
HASH = "hash"
RANGE = "range"


def hash_shard(value, n_shards):
    """The member index a key value hashes to.

    Uses ``crc32`` over the value's text, *not* Python's builtin
    ``hash`` — the builtin is salted per process, and shard placement
    must be stable across runs (and across the processes of a
    scatter-gather federation).
    """
    return zlib.crc32(str(value).encode("utf-8")) % int(n_shards)


class Partition:
    """Declares how the logical table is split across the members.

    Args:
        table: the partitioned table's name.
        key: the partition-key column.
        scheme: ``"hash"`` (rows placed by :func:`hash_shard` of the
            key) or ``"range"`` (members hold contiguous, ascending key
            ranges in member order — which is what lets the gather
            preserve key order by simple concatenation).
    """

    def __init__(self, table, key, scheme=HASH):
        if scheme not in (HASH, RANGE):
            raise ValueError(
                "partition scheme must be 'hash' or 'range', "
                "got {!r}".format(scheme)
            )
        self.table = table
        self.key = key
        self.scheme = scheme

    def __repr__(self):
        return "Partition({}, key={}, {})".format(
            self.table, self.key, self.scheme
        )


class ShardedSource(Source):
    """One logical relational source backed by k shard members.

    Args:
        members: the member wrappers, in shard order (for range
            partitioning the order *is* the key order).  Any wrapper
            speaking the relational protocol works — including members
            individually wrapped in
            :class:`~repro.resilience.ResilientSource`.
        partition: the :class:`Partition` declaration.
        replicated: names of tables present identically on every
            member (the small dimension tables a pushed join may
            reference).
        server_name: the catalog server name of the logical source.
        obs: instrument receiving ``shards_scattered`` /
            ``shards_pruned`` / ``shards_failed``.
        max_workers: cap on the scatter pool (default: one per member).
        gather: force a gather mode for keyless statements
            (``"arrival"``/``"ordered"``; an ``ORDER BY`` always wins
            and uses the exact merge).
        prefetch_depth: blocks each member stream keeps buffered ahead
            of the merge.
    """

    def __init__(self, members, partition, replicated=(),
                 server_name="shards", obs=None, max_workers=None,
                 gather=None, prefetch_depth=4):
        members = list(members)
        if not members:
            raise ValueError("a ShardedSource needs at least one member")
        if gather not in (None, ARRIVAL, ORDERED):
            raise ValueError(
                "gather must be 'arrival' or 'ordered', got {!r}".format(
                    gather
                )
            )
        self.members = members
        self.partition = partition
        self.replicated = tuple(replicated)
        self.server_name = server_name
        self._obs = obs
        self._gather = gather
        self._depth = max(1, int(prefetch_depth))
        self._block_size = 64
        self._max_workers = min(
            len(members), max_workers if max_workers else len(members)
        )
        self._pool = None
        self._pool_lock = threading.Lock()
        self._health = {"scattered": 0, "pruned": 0, "failed": 0}

    # -- the scatter pool ---------------------------------------------------------

    def _ensure_pool(self):
        with self._pool_lock:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self._max_workers,
                    thread_name_prefix="shard-{}".format(self.server_name),
                )
            return self._pool

    def close(self):
        """Shut the scatter pool down (idle shards keep no threads)."""
        with self._pool_lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=False)

    # -- configuration forwarded to every member ----------------------------------

    def set_block_size(self, size):
        size = int(size)
        self._block_size = size if size > 1 else 1
        for member in self.members:
            fn = getattr(member, "set_block_size", None)
            if fn is not None:
                fn(size)
        return self

    def enable_sql_cache(self, maxsize=128, obs=None):
        for member in self.members:
            fn = getattr(member, "enable_sql_cache", None)
            if fn is not None:
                fn(maxsize, obs=obs)
        return self

    def disable_sql_cache(self):
        for member in self.members:
            fn = getattr(member, "disable_sql_cache", None)
            if fn is not None:
                fn()
        return self

    def set_cost_optimizer(self, enabled):
        for member in self.members:
            fn = getattr(member, "set_cost_optimizer", None)
            if fn is not None:
                fn(enabled)
        return self

    # -- versioning / statistics ---------------------------------------------------

    def data_version(self):
        """Combined member fingerprint, or ``None`` (unversioned) when
        any member cannot report one."""
        versions = []
        for member in self.members:
            fn = getattr(member, "data_version", None)
            version = fn() if callable(fn) else None
            if version is None:
                return None
            versions.append(version)
        return ("shard", self.server_name, tuple(versions))

    def analyze(self):
        """``ANALYZE`` every member; returns total tables profiled.

        Per-member statistics are what shard pruning runs on — call
        this (or ``Mediator.analyze_sources()``) after loading."""
        return sum(
            fn() for fn in (
                getattr(member, "analyze", None) for member in self.members
            ) if fn is not None
        )

    def table_statistics(self, table_name):
        """Merged logical-table statistics (``None`` unless every
        member has fresh statistics for ``table_name``)."""
        from repro.optimizer.shardstats import merge_table_statistics

        if table_name in self.replicated:
            fn = getattr(self.members[0], "table_statistics", None)
            return fn(table_name) if fn is not None else None
        return merge_table_statistics(
            self._member_statistics(member, table_name)
            for member in self.members
        )

    @staticmethod
    def _member_statistics(member, table_name):
        fn = getattr(member, "table_statistics", None)
        if fn is None:
            return None
        try:
            return fn(table_name)
        except SourceError:
            return None

    def estimate_sql(self, sql):
        """Sum of member estimates for a scattered statement (first
        member's for a replicated-only one), or ``None``."""
        try:
            stmt = self._parse_select(sql)
            route = self._route(stmt)
        except SourceError:
            return None
        members = self.members if route == "scatter" else self.members[:1]
        total = 0
        for member in members:
            fn = getattr(member, "estimate_sql", None)
            estimate = fn(sql) if fn is not None else None
            if estimate is None:
                return None
            total += estimate
        return total

    # -- catalog surface -----------------------------------------------------------

    def document_ids(self):
        return self.members[0].document_ids()

    def table_for_document(self, doc_id):
        return self.members[0].table_for_document(doc_id)

    def label_for_document(self, doc_id):
        return self.members[0].label_for_document(doc_id)

    def describe_table(self, table_name):
        return self.members[0].describe_table(table_name)

    def oid_to_key(self, table_name, oid):
        return self.members[0].oid_to_key(table_name, oid)

    def supports_sql(self):
        return True

    # -- navigation ----------------------------------------------------------------

    def iter_document_children(self, doc_id):
        """Children of the document root, across all members.

        The partitioned document concatenates the members' child
        streams in member order (range partitioning therefore keeps key
        order); replicated documents read from the first member only —
        every member holds the same copy, and reading once is what
        keeps ``tuples_shipped`` identical to the unsharded layout.
        """
        table = self.table_for_document(doc_id)
        if table != self.partition.table:
            return self.members[0].iter_document_children(doc_id)
        return _ShardedChildIterator(self, doc_id)

    def materialize_document(self, doc_id):
        root = Node("&{}".format(doc_id), "list")
        for child in self.iter_document_children(doc_id):
            root.append(child)
        return root

    # -- scatter-gather ------------------------------------------------------------

    def execute_sql(self, sql):
        stmt = self._parse_select(sql)
        if self._route(stmt) == "first":
            return self.members[0].execute_sql(sql)
        return self._scatter(stmt, sql)

    def _parse_select(self, sql):
        try:
            stmt = parse_sql(sql)
        except Exception as exc:
            raise SourceError(
                "sharded source could not parse pushed SQL: {}".format(exc),
                sql=sql,
                source=self.server_name,
            )
        if not isinstance(stmt, ast.SelectStmt):
            raise SourceError(
                "sharded source accepts SELECT statements only",
                sql=sql,
                source=self.server_name,
            )
        return stmt

    def _route(self, stmt):
        """``"scatter"`` or ``"first"`` — or raise for unscatterable SQL.

        A statement scatters when it references the partitioned table
        exactly once and every other table is replicated on all
        members: each partitioned row lives on exactly one member, so
        the union of the per-member inner joins is the global answer.
        """
        part_refs = [
            ref for ref in stmt.tables if ref.table == self.partition.table
        ]
        others = [
            ref.table for ref in stmt.tables
            if ref.table != self.partition.table
        ]
        unknown = sorted(
            set(t for t in others if t not in self.replicated)
        )
        if unknown:
            raise SourceError(
                "cannot scatter over non-replicated tables {} "
                "(partitioned: {!r}, replicated: {})".format(
                    unknown, self.partition.table, list(self.replicated)
                ),
                source=self.server_name,
            )
        if len(part_refs) > 1:
            raise SourceError(
                "self-joins on the partitioned table {!r} are not "
                "scatterable".format(self.partition.table),
                source=self.server_name,
            )
        return "scatter" if part_refs else "first"

    def _scatter(self, stmt, sql):
        shard_sql, sort_positions, project_width, names = self._shard_plan(
            stmt, sql
        )
        live, pruned = self._prune(stmt)
        if self._obs is not None:
            if pruned:
                self._obs.incr(statnames.SHARDS_PRUNED, pruned)
            if live:
                self._obs.incr(statnames.SHARDS_SCATTERED, len(live))
        self._health["pruned"] += pruned
        self._health["scattered"] += len(live)
        if not live:
            return Cursor(names, [])
        if sort_positions:
            gather = MERGE
        elif self.partition.scheme == RANGE:
            gather = ORDERED
        else:
            gather = self._gather or ARRIVAL
        pool = self._ensure_pool()
        cond = threading.Condition()
        streams = [
            ShardStream(
                index,
                _member_name(member, index),
                _opener(member, shard_sql),
                pool,
                cond,
                block_size=self._block_size,
                depth=self._depth,
            )
            for index, member in live
        ]
        return ShardMergeCursor(
            names,
            streams,
            gather=gather,
            sort_positions=sort_positions,
            project_width=project_width,
            distinct=stmt.distinct,
            obs=self._obs,
            on_failure=self._note_stream_failure,
        )

    def _note_stream_failure(self, exc):
        self._health["failed"] += 1

    def _prune(self, stmt):
        """``(live [(index, member)], pruned count)`` for a statement."""
        from repro.optimizer.shardstats import shard_prunable

        tables = set(ref.table for ref in stmt.tables)
        live, pruned = [], 0
        for index, member in enumerate(self.members):
            stats = {
                table: self._member_statistics(member, table)
                for table in tables
            }
            if shard_prunable(stmt, stats):
                pruned += 1
            else:
                live.append((index, member))
        return live, pruned

    # -- per-shard statement shape ---------------------------------------------------

    def _shard_plan(self, stmt, sql):
        """``(member SQL, sort positions, projection width, columns)``.

        The member statement is the pushed statement verbatim unless it
        carries an ``ORDER BY`` over columns the projection does not
        expose — those are appended as auxiliary select items (each
        member then ships them, the merge keys on them, and the cursor
        trims rows back to the true projection width).
        """
        names = self._column_names(stmt)
        if not stmt.order_by:
            return sql, None, None, names
        width = len(names)
        positions, extras = [], []
        for ref in stmt.order_by:
            position = self._item_position(stmt, ref)
            if position is None:
                position = width + len(extras)
                extras.append(ast.SelectItem(ref))
            positions.append(position)
        if not extras:
            return sql, positions, None, names
        widened = ast.SelectStmt(
            stmt.items + extras,
            stmt.tables,
            stmt.predicates,
            stmt.order_by,
            stmt.distinct,
        )
        return repr(widened), positions, width, names

    def _column_names(self, stmt):
        names = []
        for item in stmt.items:
            if item.is_star:
                for ref in stmt.tables:
                    schema = self.describe_table(ref.table)
                    names.extend(schema.column_names)
            elif item.alias:
                names.append(item.alias)
            else:
                names.append(item.ref.column)
        return names

    def _item_position(self, stmt, ref):
        """Position of an ORDER BY ref in the projection, or ``None``."""
        position = 0
        for item in stmt.items:
            if item.is_star:
                for table_ref in stmt.tables:
                    schema = self.describe_table(table_ref.table)
                    for column in schema.column_names:
                        if column == ref.column and (
                            ref.qualifier is None
                            or ref.qualifier == table_ref.alias
                        ):
                            return position
                        position += 1
                continue
            if item.ref == ref or (
                item.alias is not None
                and ref.qualifier is None
                and item.alias == ref.column
            ):
                return position
            position += 1
        return None

    # -- health --------------------------------------------------------------------

    def shard_health(self):
        """Cumulative scatter tallies, rendered by ``Mediator.explain``
        as the ``-- shard:`` footer."""
        health = {"source": self.server_name, "shards": len(self.members)}
        health.update(self._health)
        return health

    def resilience_health(self):
        """Aggregated member resilience health, or ``None`` when no
        member is resilient.  Counters sum; the breaker column joins
        the members' states in member order, so one flapping member is
        visible without hiding its siblings' health."""
        reports = []
        for member in self.members:
            fn = getattr(member, "resilience_health", None)
            if fn is None:
                continue
            report = fn()
            if report is not None:
                reports.append(report)
        if not reports:
            return None
        health = {"source": self.server_name}
        for key in ("retries", "failures", "timeouts", "degraded",
                    "circuit_rejections"):
            health[key] = sum(r.get(key, 0) for r in reports)
        states = [r.get("breaker") for r in reports]
        health["breaker"] = (
            "/".join(str(s) for s in states) if any(states) else None
        )
        health["breaker_transitions"] = [
            transition
            for r in reports
            for transition in r.get("breaker_transitions", ())
        ]
        return health

    def __repr__(self):
        return "ShardedSource({}, {} members, {!r})".format(
            self.server_name, len(self.members), self.partition
        )


def _member_name(member, index):
    inner = getattr(member, "name", None) or getattr(
        member, "server_name", None
    ) or type(member).__name__
    return "{}[{}]".format(inner, index)


def _opener(member, shard_sql):
    def open_cursor():
        return member.execute_sql(shard_sql)

    return open_cursor


class _ShardedChildIterator:
    """Member-order concatenation of the partitioned document's children.

    ``retry_safe``/``skip`` speak the resilience iterator protocol: a
    raise consumes nothing (the failed member is remembered), and
    ``skip()`` abandons the failed member so a degrading engine can
    stub it and continue with the next member's children.
    """

    retry_safe = True

    def __init__(self, sharded, doc_id):
        self._sharded = sharded
        self._doc = doc_id
        self._index = 0
        self._inner = None
        self._failed = False

    def __iter__(self):
        return self

    def __next__(self):
        members = self._sharded.members
        while True:
            if self._index >= len(members):
                raise StopIteration
            if self._inner is None:
                try:
                    self._inner = iter(
                        members[self._index].iter_document_children(
                            self._doc
                        )
                    )
                except SourceError as exc:
                    raise self._member_error(exc)
            try:
                return next(self._inner)
            except StopIteration:
                self._advance()
            except SourceError as exc:
                raise self._member_error(exc)

    def _member_error(self, exc):
        self._failed = True
        sharded = self._sharded
        name = _member_name(sharded.members[self._index], self._index)
        sharded._health["failed"] += 1
        if sharded._obs is not None:
            sharded._obs.incr(statnames.SHARDS_FAILED)
        if isinstance(exc, ShardError):
            return exc
        shard_exc = ShardError(
            "shard {!r} failed during navigation: {}".format(name, exc),
            doc_id=self._doc,
            source=name,
            shard=name,
            index=self._index,
        )
        shard_exc.__cause__ = exc
        return shard_exc

    def skip(self):
        """Abandon the failing member; the next pull continues with the
        next member's children."""
        self._advance()

    def _advance(self):
        self._index += 1
        self._inner = None
        self._failed = False

    def __repr__(self):
        return "_ShardedChildIterator({!r}, member={})".format(
            self._doc, self._index
        )
