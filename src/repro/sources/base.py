"""The wrapper interface the mediator engines program against."""

from __future__ import annotations

from repro.errors import SourceError


class Source:
    """Abstract base of all source wrappers.

    A source exports one or more *documents* (named XML roots).  The
    engine interacts with a document in two ways:

    * :meth:`iter_document_children` — a lazy iterator over the root's
      children, pulled one at a time as navigation demands (the
      navigation-driven path);
    * :meth:`materialize_document` — the whole document at once (the
      eager baseline, and the only option for sources that support no
      navigation, per the paper's footnote 2).

    Relational wrappers additionally accept pushed-down SQL via
    :meth:`execute_sql`.

    Sources that can version their data implement ``data_version()``
    returning a hashable token that changes on every write (the
    relational wrapper derives it from per-table write versions, the
    XML source from its registration epoch).  The method is looked up
    with ``getattr`` rather than defined here so that decorating
    proxies (:class:`~repro.resilience.ResilientSource`,
    :class:`~repro.resilience.FaultInjectingSource`) delegate it to
    their inner source automatically via ``__getattr__``; a source
    without the method is treated as unversioned and excluded from
    result-level caching.

    ``set_block_size(size)`` is duck-typed the same way (block
    execution): a block-mode mediator calls it on every registered
    source that has it, and sources that do (the relational wrapper)
    switch :meth:`iter_document_children` to cursor batches of
    ``size`` rows — one source span per batch, still one element per
    pull, so navigation semantics and ``tuples_shipped`` are
    unchanged.  Sources without the method simply stay tuple-at-a-time
    behind the same iterator interface.
    """

    def document_ids(self):
        """Ids of the documents this source exports."""
        raise NotImplementedError

    def iter_document_children(self, doc_id):
        """Lazy iterator of the document root's children (Nodes)."""
        raise NotImplementedError

    def materialize_document(self, doc_id):
        """The full document tree (root Node)."""
        raise NotImplementedError

    def supports_sql(self):
        """Whether :meth:`execute_sql` is available (relational sources)."""
        return False

    def execute_sql(self, sql):
        """Run pushed-down SQL; returns a cursor.  Relational only."""
        raise SourceError(
            "{} does not accept SQL: {!r}".format(type(self).__name__, sql),
            sql=sql,
            source=type(self).__name__,
        )

    def describe_table(self, table_name):
        """Schema of an exported table (relational only)."""
        raise SourceError(
            "{} has no relational schema (table {!r})".format(
                type(self).__name__, table_name
            ),
            source=type(self).__name__,
        )
