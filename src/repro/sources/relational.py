"""The relational-to-XML wrapper (paper Fig. 2).

Each registered table becomes a document: a ``list``-labeled root whose
children are "tuple objects" — one element per row, labeled with the
table name, whose children are field elements with leaf values.  "The
relational database wrapper exporting the database assigns the tuple keys
(eg, XYZ123) to be the oid's of the corresponding 'tuple' objects —
after it precedes them with the &."

Laziness: :meth:`iter_document_children` drives a cursor, so rows the
mediator never navigates to are never shipped (or even joined, thanks to
the pipelined executor underneath).
"""

from __future__ import annotations

from repro import stats as statnames
from repro.errors import SourceError
from repro.xmltree.tree import Node, OidGenerator
from repro.sources.base import Source


class RelationalWrapper(Source):
    """Wraps a :class:`repro.relational.Database` as an XML source.

    Example::

        wrapper = RelationalWrapper(db, server_name="s")
        wrapper.register_document("root1", "customer")
        wrapper.register_document("root2", "orders")
    """

    def __init__(self, database, server_name="s"):
        self.database = database
        self.server_name = server_name
        self._documents = {}  # doc_id -> (table name, element label)
        self._oids = OidGenerator("w")
        self._sql_cache = None
        self._block_size = 1

    # -- block execution ----------------------------------------------------------

    def set_block_size(self, size):
        """Batch document-iteration row fetches to ``size`` rows.

        Set by :meth:`Mediator.add_source` to the mediator's block size.
        Document iteration still *yields* one element per pull (the
        engine's laziness contract is untouched, and fault-injecting
        proxies intercepting the iterator still see every item), but
        rows cross the cursor boundary ``fetch_block``-at-a-time and the
        per-row wrapper span collapses to one span per block.
        ``tuples_shipped`` stays per-row; batches count
        :data:`~repro.stats.BLOCKS_SHIPPED`.
        """
        size = int(size)
        self._block_size = size if size > 1 else 1
        return self

    # -- result caching ----------------------------------------------------------

    def enable_sql_cache(self, maxsize=128, obs=None):
        """Cache fully fetched SQL results, keyed by statement text +
        per-table write versions (see :mod:`repro.cache.sqlcache`).

        Counters land on ``obs`` (default: the database's instrument).
        ``maxsize=0`` leaves the wrapper uncached.
        """
        from repro.cache.sqlcache import SqlResultCache

        if maxsize:
            self._sql_cache = SqlResultCache(
                maxsize, obs=obs or self.database.stats
            )
        else:
            self._sql_cache = None
        return self

    def disable_sql_cache(self):
        self._sql_cache = None
        return self

    @property
    def sql_cache(self):
        """The attached :class:`SqlResultCache`, or ``None``."""
        return self._sql_cache

    def sql_cache_health(self):
        """Cumulative cache counters plus the wrapper's traffic tallies
        (rendered per source by ``Mediator.explain``)."""
        if self._sql_cache is None:
            return None
        health = {"source": self.server_name}
        health.update(self._sql_cache.stats())
        stats = self.database.stats
        health["tuples_shipped"] = stats.get(statnames.TUPLES_SHIPPED)
        health["tuples_from_cache"] = stats.get(statnames.TUPLES_FROM_CACHE)
        return health

    def data_version(self):
        """The wrapper's write-version fingerprint (navigation memo)."""
        return (
            "rel",
            self.server_name,
            tuple(sorted(self.database.table_versions().items())),
        )

    # -- optimizer statistics ----------------------------------------------------

    def set_cost_optimizer(self, enabled):
        """Switch the underlying database's cost-based planning."""
        self.database.optimizer = bool(enabled)
        return self

    def analyze(self):
        """``ANALYZE`` every exported table; returns the count."""
        return self.database.analyze()

    def table_statistics(self, table_name):
        """Fresh ``ANALYZE`` statistics for ``table_name``, or ``None``
        (never analyzed, or stale after DML)."""
        from repro.optimizer.statistics import fresh_statistics

        return fresh_statistics(self.database.table(table_name))

    def estimate_sql(self, sql):
        """Estimated result rows for a pushed SELECT, or ``None``.

        Estimates exist only when *every* referenced table has fresh
        statistics — a never-analyzed source yields no estimates, which
        keeps EXPLAIN output (and its goldens) unchanged by default.
        """
        from repro.optimizer.statistics import fresh_statistics
        from repro.relational import ast
        from repro.relational.parser import parse_sql

        stmt = parse_sql(sql)
        if not isinstance(stmt, ast.SelectStmt):
            return None
        for ref in stmt.tables:
            if not self.database.has_table(ref.table):
                return None
            table = self.database.table(ref.table)
            if fresh_statistics(table) is None:
                return None
        return self.database.estimate(sql)

    # -- configuration -----------------------------------------------------------

    def register_document(self, doc_id, table_name, element_label=None):
        """Export ``table_name`` as the document ``doc_id``.

        ``element_label`` names the exported tuple objects; it defaults
        to the table name but may differ (the paper's ``orders`` table
        exports ``order`` elements in Fig. 2).
        """
        self.database.table(table_name)  # validate early
        self._documents[doc_id] = (table_name, element_label or table_name)
        return self

    def table_for_document(self, doc_id):
        return self._doc_entry(doc_id)[0]

    def label_for_document(self, doc_id):
        return self._doc_entry(doc_id)[1]

    def _doc_entry(self, doc_id):
        try:
            return self._documents[doc_id]
        except KeyError:
            raise SourceError(
                "wrapper {!r} exports no document {!r}".format(
                    self.server_name, doc_id
                ),
                doc_id=doc_id,
                source=self.server_name,
            )

    # -- Source interface -----------------------------------------------------------

    def document_ids(self):
        return sorted(self._documents)

    def iter_document_children(self, doc_id):
        """Row-at-a-time iterator of tuple objects (cursor driven)."""
        table_name, label = self._doc_entry(doc_id)
        table = self.database.table(table_name)
        stats = self.database.stats
        span_name = "wrap({})".format(doc_id)
        span_key = "wrap:{}:{}".format(self.server_name, doc_id)
        with self._span(stats, span_name, span_key, table_name):
            # Through execute_sql so document iteration shares the SQL
            # result cache with pushed rQ statements.
            cursor = self.execute_sql(
                "SELECT * FROM {}".format(table_name)
            )
        if self._block_size > 1:
            schema = table.schema
            size = self._block_size
            while True:
                # One span covers the whole batch: rows cross the
                # cursor boundary block-at-a-time, but each is still
                # one source navigation and one shipped tuple.
                with self._span(stats, span_name, span_key, table_name):
                    rows = cursor.fetch_block(size)
                    if not rows:
                        return
                    stats.incr(statnames.SOURCE_NAVIGATIONS, len(rows))
                    elements = [
                        self.row_to_element(schema, row, label=label)
                        for row in rows
                    ]
                for element in elements:
                    yield element
            return
        rows = iter(cursor)
        while True:
            # Each row pull is one source navigation; the span attributes
            # it (and the cursor work underneath) to the QDOM command
            # that demanded the row.
            with self._span(stats, span_name, span_key, table_name):
                try:
                    row = next(rows)
                except StopIteration:
                    return
                stats.incr(statnames.SOURCE_NAVIGATIONS)
                element = self.row_to_element(table.schema, row, label=label)
            yield element

    @staticmethod
    def _span(stats, name, key, table_name):
        return stats.operator_span(
            name, key=key, kind="source", table=table_name
        )

    def materialize_document(self, doc_id):
        """The whole document at once (eager baseline)."""
        root = Node("&{}".format(doc_id), "list")
        for child in self.iter_document_children(doc_id):
            root.append(child)
        return root

    def supports_sql(self):
        return True

    def execute_sql(self, sql):
        if self._sql_cache is not None:
            return self._sql_cache.execute(self.database, sql)
        return self.database.execute(sql)

    def describe_table(self, table_name):
        return self.database.table(table_name).schema

    # -- element assembly ------------------------------------------------------------

    def row_to_element(self, schema, row, label=None):
        """Build the tuple object for one row (Fig. 2 layout).

        SQL NULLs have no XML value representation in the paper's
        model; a NULL field is exported as an *absent* element, the
        idiomatic XML encoding (conditions on it are then false, which
        matches SQL's NULL comparison semantics).
        """
        element = Node(
            self.oid_for_row(schema, row), label or schema.name
        )
        for col, value in zip(schema.columns, row):
            if value is None:
                continue
            field = Node(self._oids.fresh(), col.name)
            field.append(Node(self._oids.fresh(), value))
            element.append(field)
        return element

    def oid_for_row(self, schema, row):
        """The key-derived oid of a row's tuple object (``&XYZ`` style).

        Keyless tables get surrogate oids — their tuple objects cannot be
        referenced by decontextualized queries, matching the paper's
        requirement that group-by variables be key-addressable.
        """
        key_idx = schema.key_indexes()
        if not key_idx:
            return self._oids.fresh()
        return "&" + "/".join(str(row[i]) for i in key_idx)

    def oid_to_key(self, table_name, oid):
        """Decode a tuple-object oid back to its key values."""
        schema = self.database.table(table_name).schema
        if not str(oid).startswith("&"):
            raise SourceError(
                "not a wrapper oid: {!r}".format(oid),
                source=self.server_name,
            )
        parts = str(oid)[1:].split("/")
        key_idx = schema.key_indexes()
        if len(parts) != len(key_idx):
            raise SourceError(
                "oid {!r} does not match the key of {!r}".format(
                    oid, table_name
                ),
                source=self.server_name,
            )
        return [
            schema.columns[i].type.accept(part)
            for i, part in zip(key_idx, parts)
        ]

    def __repr__(self):
        return "RelationalWrapper({}, docs={})".format(
            self.server_name, self._documents
        )
