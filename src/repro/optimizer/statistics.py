"""Per-table statistics collected by ``ANALYZE``.

The DESIGN calls for "per-source statistics" in the relational engine;
this module is their concrete shape.  ``ANALYZE [table]`` walks a table
once and records, per column: the number of distinct values (NDV), the
min/max, the fraction of NULLs, and — for numeric columns — a small
equi-width histogram.  The statistics are stamped with the table's
``(epoch, version)`` write counters (the same tokens the query cache
invalidates on, see PR 3), so a single integer comparison tells whether
they still describe the data: any DML or DDL moves ``version`` and the
statistics go *stale*.  Stale statistics are never silently used for
value-level estimates — the estimator falls back to its defaults — but
the live row count (``len(table)``) is always current and free.
"""

from __future__ import annotations

#: Default number of equi-width histogram buckets.
DEFAULT_BUCKETS = 16


class Histogram:
    """An equi-width histogram over a numeric column.

    ``bounds`` are the ``n+1`` bucket edges of ``n`` buckets spanning
    ``[lo, hi]``; ``counts[i]`` is the number of non-NULL rows whose
    value falls in bucket ``i`` (the last bucket is closed on both
    sides).
    """

    __slots__ = ("lo", "hi", "counts", "total")

    def __init__(self, lo, hi, counts):
        self.lo = lo
        self.hi = hi
        self.counts = list(counts)
        self.total = sum(self.counts)

    @property
    def n_buckets(self):
        return len(self.counts)

    def _width(self):
        return (self.hi - self.lo) / self.n_buckets

    def fraction_below(self, value):
        """Estimated fraction of non-NULL rows with ``column < value``.

        Linear interpolation inside the bucket containing ``value``;
        exact 0/1 outside the observed range.
        """
        if self.total == 0:
            return 0.0
        if value <= self.lo:
            return 0.0
        if value > self.hi:
            return 1.0
        if self.hi == self.lo:
            # Single-point domain: everything sits at lo == hi < value
            # was handled above, so value is in (lo, hi].
            return 0.0
        width = self._width()
        position = (value - self.lo) / width
        bucket = min(int(position), self.n_buckets - 1)
        below = sum(self.counts[:bucket])
        within = self.counts[bucket] * (position - bucket)
        return min(1.0, (below + within) / self.total)

    def fraction_between(self, low, high):
        """Estimated fraction of non-NULL rows in ``[low, high)``."""
        return max(0.0, self.fraction_below(high) - self.fraction_below(low))

    def __repr__(self):
        return "Histogram([{}, {}], {} buckets)".format(
            self.lo, self.hi, self.n_buckets
        )


class ColumnStatistics:
    """ANALYZE output for one column."""

    __slots__ = ("name", "ndv", "min", "max", "null_fraction", "histogram")

    def __init__(self, name, ndv, min_value, max_value, null_fraction,
                 histogram=None):
        self.name = name
        self.ndv = ndv
        self.min = min_value
        self.max = max_value
        self.null_fraction = null_fraction
        self.histogram = histogram

    def __repr__(self):
        return ("ColumnStatistics({}, ndv={}, min={!r}, max={!r}, "
                "nulls={:.2f}{})").format(
            self.name, self.ndv, self.min, self.max, self.null_fraction,
            ", hist" if self.histogram is not None else "",
        )


class TableStatistics:
    """ANALYZE output for one table, pinned to its write counters.

    ``is_fresh(table)`` is the staleness check: the statistics describe
    the table iff the table's write ``version`` has not moved since
    collection.  (A dropped-and-recreated table is a *new* object with
    ``statistics = None``, so the epoch needs no runtime check; it is
    recorded for reporting.)
    """

    __slots__ = ("table", "row_count", "columns", "version", "epoch")

    def __init__(self, table, row_count, columns, version, epoch=None):
        self.table = table
        self.row_count = row_count
        self.columns = dict(columns)
        self.version = version
        self.epoch = epoch

    def is_fresh(self, table):
        return table.version == self.version

    def column(self, name):
        return self.columns.get(name)

    def __repr__(self):
        return "TableStatistics({}, rows={}, v={})".format(
            self.table, self.row_count, self.version
        )


def collect_table_statistics(table, n_buckets=DEFAULT_BUCKETS, epoch=None):
    """One full pass over ``table``; returns :class:`TableStatistics`.

    The pass reads a snapshot, so collection does not perturb the
    ``rows_scanned`` traffic counters the experiments measure.
    """
    rows = table.rows_snapshot()
    schema = table.schema
    columns = {}
    for position, column in enumerate(schema.columns):
        values = [row[position] for row in rows]
        non_null = [v for v in values if v is not None]
        nulls = len(values) - len(non_null)
        null_fraction = (nulls / len(values)) if values else 0.0
        if not non_null:
            columns[column.name] = ColumnStatistics(
                column.name, 0, None, None, null_fraction
            )
            continue
        lo, hi = min(non_null), max(non_null)
        histogram = None
        if all(isinstance(v, (int, float)) for v in non_null):
            histogram = _build_histogram(non_null, lo, hi, n_buckets)
        columns[column.name] = ColumnStatistics(
            column.name,
            len(set(non_null)),
            lo,
            hi,
            null_fraction,
            histogram,
        )
    return TableStatistics(
        schema.name, len(rows), columns, table.version, epoch=epoch
    )


def _build_histogram(values, lo, hi, n_buckets):
    if hi == lo:
        return Histogram(lo, hi, [len(values)])
    counts = [0] * n_buckets
    width = (hi - lo) / n_buckets
    for value in values:
        bucket = min(int((value - lo) / width), n_buckets - 1)
        counts[bucket] += 1
    return Histogram(lo, hi, counts)


def fresh_statistics(table):
    """``table.statistics`` if present *and* fresh, else ``None``.

    This is the only accessor cost code should use: it encodes the
    rule that stale statistics contribute nothing.
    """
    stats = getattr(table, "statistics", None)
    if stats is not None and stats.is_fresh(table):
        return stats
    return None
