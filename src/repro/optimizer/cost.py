"""The cost model driving the SQL executor's physical choices.

Three decisions, all previously syntactic, become cost-based here:

* **join order** — a greedy enumeration over the join graph: start from
  the alias with the smallest estimated (filtered) cardinality, then
  repeatedly take the equi-connected alias that minimizes the estimated
  intermediate result (cross products only when the graph is
  disconnected, and then smallest-first);
* **build vs probe** — each hash join materializes its smaller side and
  streams the larger one (the seed always built the newly joined
  alias);
* **index vs scan** — among the usable (prefix-bound) secondary
  indexes, the one with the fewest estimated matching rows, and only
  when that beats a full scan.

Everything here consumes the executor's resolved predicate objects
duck-typed (``aliases``/``op``/``left``/``right`` with
``column``/``is_literal``), so the estimator stays import-cycle-free.
"""

from __future__ import annotations

from repro.optimizer.selectivity import (
    conjunction_selectivity,
    default_selectivity,
    equijoin_selectivity,
    predicate_selectivity,
)

#: A partial-prefix index probe must look this much better than a full
#: scan to be chosen (it walks the index's distinct keys, so a barely
#: selective prefix can cost more than the scan it replaces).
PARTIAL_PREFIX_THRESHOLD = 0.75

_FLIPPED = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}


class JoinStep:
    """One planned pipeline step: join ``alias`` into the stream.

    ``build_new`` picks the hash-join build side: ``True`` materializes
    the newly joined alias (the seed behavior), ``False`` materializes
    the accumulated stream and probes the new alias instead.  ``None``
    for the first step (a plain scan).
    """

    __slots__ = ("alias", "build_new", "estimate")

    def __init__(self, alias, build_new, estimate):
        self.alias = alias
        self.build_new = build_new
        self.estimate = estimate

    def __repr__(self):
        return "JoinStep({}, build_new={}, est={:.1f})".format(
            self.alias, self.build_new, self.estimate
        )


class SelectPlanner:
    """Cost-based physical planning for one SELECT.

    Built from the executor's name binding and resolved predicates;
    every estimate bottoms out in the tables' live row counts plus
    whatever fresh ``ANALYZE`` statistics exist.
    """

    def __init__(self, binding, predicates):
        self.binding = binding
        self.predicates = list(predicates)
        self._position = {a: i for i, a in enumerate(binding.aliases)}
        self._local = {
            alias: [
                p for p in self.predicates
                if p.aliases and p.aliases <= {alias}
            ]
            for alias in binding.aliases
        }
        self._scan_est = {
            alias: self._filtered_rows(alias) for alias in binding.aliases
        }

    # -- per-alias estimates ---------------------------------------------------

    def table(self, alias):
        return self.binding.tables[alias]

    def local_predicates(self, alias):
        return self._local[alias]

    def scan_estimate(self, alias):
        """Estimated rows surviving the alias's filtered scan."""
        return self._scan_est[alias]

    def _filtered_rows(self, alias):
        table = self.table(alias)
        rows = float(len(table))
        sels = [
            self._local_selectivity(table, p)
            for p in self._local[alias]
        ]
        return rows * conjunction_selectivity(sels)

    @staticmethod
    def _local_selectivity(table, predicate):
        column, op, literal = _column_literal_form(predicate)
        if column is not None:
            return predicate_selectivity(table, column, op, literal)
        return default_selectivity(predicate.op)

    # -- join ordering ---------------------------------------------------------

    def join_order(self):
        """The greedy cost-based order; a list of :class:`JoinStep`."""
        pending = list(self.binding.aliases)
        if not pending:
            return []
        first = min(
            pending,
            key=lambda a: (self._scan_est[a], self._position[a]),
        )
        pending.remove(first)
        stream_est = self._scan_est[first]
        steps = [JoinStep(first, None, stream_est)]
        joined = {first}
        while pending:
            alias, estimate = self._next_step(pending, joined, stream_est)
            pending.remove(alias)
            build_new = self._scan_est[alias] <= stream_est
            steps.append(JoinStep(alias, build_new, estimate))
            joined.add(alias)
            stream_est = estimate
        return steps

    def final_estimate(self):
        """Estimated output rows of the whole FROM/WHERE pipeline."""
        steps = self.join_order()
        estimate = steps[-1].estimate if steps else 0.0
        # Residual predicates (spanning 3+ aliases, or whatever the
        # join loop could not consume) filter the final stream.
        joined = {s.alias for s in steps}
        for p in self.predicates:
            if len(p.aliases) > 2 and p.aliases <= joined:
                estimate *= default_selectivity(p.op)
        return estimate

    def _next_step(self, pending, joined, stream_est):
        connected = [
            a for a in pending
            if any(
                p.op == "="
                and len(p.aliases) == 2
                and a in p.aliases
                and (p.aliases - {a}) <= joined
                for p in self.predicates
            )
        ]
        if connected:
            best = min(
                connected,
                key=lambda a: (
                    self._join_estimate(a, joined, stream_est),
                    self._position[a],
                ),
            )
            return best, self._join_estimate(best, joined, stream_est)
        # Disconnected join graph: a cross product is unavoidable.
        # Prefer an alias a usable index or a local predicate shrinks
        # (the satellite fix for the old blind ``pending[0]``).
        best = min(
            pending,
            key=lambda a: (
                self._scan_est[a],
                0 if self._has_usable_index(a) else 1,
                self._position[a],
            ),
        )
        return best, stream_est * self._scan_est[best]

    def _join_estimate(self, alias, joined, stream_est):
        estimate = stream_est * self._scan_est[alias]
        for p in self.predicates:
            if len(p.aliases) != 2 or alias not in p.aliases:
                continue
            if not (p.aliases - {alias}) <= joined:
                continue
            if p.op == "=" and not (p.left.is_literal or p.right.is_literal):
                estimate *= self._equijoin_selectivity(p)
            else:
                estimate *= default_selectivity(p.op)
        return estimate

    def _equijoin_selectivity(self, predicate):
        (l_alias,) = predicate.left.aliases
        (r_alias,) = predicate.right.aliases
        return equijoin_selectivity(
            self.table(l_alias), predicate.left.column,
            self.table(r_alias), predicate.right.column,
        )

    def _has_usable_index(self, alias):
        bound = _equality_bindings(self._local[alias])
        table = self.table(alias)
        return any(columns[0] in bound for columns in table.indexes())

    # -- index choice ----------------------------------------------------------

    def choose_index(self, alias, candidates):
        """Pick among usable index candidates ``[(columns, prefix_len)]``.

        Returns the winning ``(columns, prefix_len)`` or ``None`` when a
        full scan is estimated to be cheaper.
        """
        if not candidates:
            return None
        table = self.table(alias)
        bound = _equality_bindings(self._local[alias])
        rows = float(len(table))

        def probe_estimate(candidate):
            columns, prefix_len = candidate
            sels = [
                predicate_selectivity(table, col, "=", bound[col])
                for col in columns[:prefix_len]
            ]
            return rows * conjunction_selectivity(sels)

        best = min(candidates, key=lambda c: (probe_estimate(c), c[0]))
        estimate = probe_estimate(best)
        if best[1] == len(best[0]):
            # Fully bound: a single O(1) bucket probe always wins.
            return best
        if estimate < rows * PARTIAL_PREFIX_THRESHOLD:
            return best
        return None


def estimate_select(database, stmt):
    """Estimated result rows of a parsed SELECT against ``database``.

    This is what the mediator-level plan estimator (`est=` in EXPLAIN)
    and the pushed-SQL split consult.  Import is deferred so the
    executor's lazy import of this module stays cycle-free.
    """
    from repro.relational.executor import resolve_select

    binding, predicates = resolve_select(database, stmt)
    planner = SelectPlanner(binding, predicates)
    return max(0.0, planner.final_estimate())


def _column_literal_form(predicate):
    """``(column, op, literal)`` for a one-sided comparison, flipping
    the operator when the literal is on the left; ``(None, op, None)``
    otherwise."""
    if predicate.left.column is not None and predicate.right.is_literal:
        return predicate.left.column, predicate.op, predicate.right.literal
    if predicate.right.column is not None and predicate.left.is_literal:
        op = _FLIPPED.get(predicate.op, predicate.op)
        return predicate.right.column, op, predicate.left.literal
    return None, predicate.op, None


def _equality_bindings(local_predicates):
    bindings = {}
    for p in local_predicates:
        eq = p.equality_binding()
        if eq is not None:
            bindings.setdefault(eq[0], eq[1])
    return bindings
