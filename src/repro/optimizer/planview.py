"""Cardinality estimates for XMAS plans (`est=` in EXPLAIN ANALYZE).

Estimated tuple counts per plan operator, keyed by the same stable node
tokens the :class:`~repro.obs.instrument.Instrument` uses for actuals —
so ``repro.obs.explain`` can print ``est=… act=…`` side by side and
misestimates become visible at a glance.

Estimates *originate* at ``rQ`` leaves: the pushed SQL is re-parsed and
costed against the source database's statistics
(:func:`repro.optimizer.cost.estimate_select`), which requires fresh
``ANALYZE`` statistics on every referenced table.  They then propagate
up the mediator spine with simple per-operator rules (selections scale,
joins multiply, group-bys shrink).  A node whose inputs carry no
estimate carries none either — in particular, a never-analyzed source
yields an empty map and EXPLAIN output identical to the pre-optimizer
format, which is what keeps the seed goldens byte-stable.
"""

from __future__ import annotations

from repro.algebra import operators as ops
from repro.obs.tokens import node_token
from repro.optimizer.selectivity import default_selectivity

#: Fraction of input tuples estimated to survive a semijoin probe.
SEMIJOIN_FRACTION = 0.75
#: Estimated groups per input tuple for gBy (distinct-group heuristic).
GROUP_FRACTION = 0.75


def estimate_plan(plan, catalog):
    """``{node_token: estimated_rows}`` for the estimable part of
    ``plan``.  Empty when no source statistics back any leaf."""
    estimates = {}
    _estimate(plan, catalog, estimates)
    return estimates


def _estimate(node, catalog, estimates):
    """Post-order estimate of ``node``; records and returns it
    (``None`` when not estimable)."""
    child_ests = [
        _estimate(child, catalog, estimates) for child in node.children
    ]
    if isinstance(node, ops.Apply):
        # The nested plan runs per group; estimate it for its own
        # annotations but the apply's output follows its input.
        _estimate(node.plan, catalog, estimates)
    est = _node_estimate(node, catalog, child_ests)
    if est is not None:
        est = max(0, int(round(est)))
        estimates[node_token(node)] = est
    return est


def _node_estimate(node, catalog, child_ests):
    if isinstance(node, ops.RelQuery):
        return _relquery_estimate(node, catalog)
    if isinstance(node, ops.Select):
        if child_ests and child_ests[0] is not None:
            return child_ests[0] * default_selectivity(node.condition.op)
        return None
    if isinstance(node, (ops.Join, ops.SemiJoin)):
        return _join_estimate(node, child_ests)
    if isinstance(node, ops.GroupBy):
        if child_ests and child_ests[0] is not None:
            return max(1.0, child_ests[0] * GROUP_FRACTION)
        return None
    if isinstance(
        node, (ops.CrElt, ops.Cat, ops.TD, ops.OrderBy, ops.Apply,
               ops.Project)
    ):
        # One output tuple per input tuple: pass the input through.
        return child_ests[0] if child_ests else None
    return None


def _join_estimate(node, child_ests):
    if len(child_ests) != 2 or None in child_ests:
        return None
    left, right = child_ests
    if isinstance(node, ops.SemiJoin):
        kept = left if node.keep == "left" else right
        return kept * SEMIJOIN_FRACTION
    estimate = left * right
    for condition in node.conditions:
        if condition.op == "=" and condition.is_var_var():
            # Key/value equijoin: the classic 1/max(|l|, |r|) — the
            # per-column NDV already shaped the rQ estimates below.
            estimate *= 1.0 / max(left, right, 1.0)
        else:
            estimate *= default_selectivity(condition.op)
    return estimate


def _relquery_estimate(node, catalog):
    try:
        source = catalog.server(node.server)
    except Exception:
        return None
    estimator = getattr(source, "estimate_sql", None)
    if not callable(estimator):
        return None
    return estimator(node.sql)
