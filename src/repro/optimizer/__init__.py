"""Statistics-driven cost-based optimization (``ANALYZE`` + cost model).

The seed planner was entirely syntactic: join order followed FROM-clause
connectivity, the hash-join build side was always the newly joined
alias, and the SQL split never looked at data sizes.  This package adds
the statistics layer the DESIGN calls for:

* :mod:`repro.optimizer.statistics` — ``ANALYZE`` collection: row
  counts, per-column NDV / min / max / null fraction / equi-width
  histograms, staled by the tables' ``(epoch, version)`` write counters;
* :mod:`repro.optimizer.selectivity` — selectivity estimation for the
  executor's predicate forms (equality, ranges, conjunctions,
  equijoins), with System-R defaults when statistics are missing or
  stale;
* :mod:`repro.optimizer.cost` — the cost model behind the executor's
  join ordering, build/probe-side choice, and index-vs-scan decision;
* :mod:`repro.optimizer.planview` — mediator-level cardinality
  estimates for XMAS plans, rendered as ``est=… act=…`` by
  ``EXPLAIN ANALYZE``.

Statistics only steer plan choices — never results.  ``ANALYZE`` is
plain DDL (``db.run("ANALYZE")``), and both the relational executor
(``Database(optimizer=False)``) and the mediator
(``Mediator(cost_optimizer=False)``, CLI ``--no-optimizer``) can fall
back to the seed's deterministic syntactic planning.
"""

from repro.optimizer.statistics import (
    ColumnStatistics,
    Histogram,
    TableStatistics,
    collect_table_statistics,
    fresh_statistics,
)
from repro.optimizer.selectivity import (
    conjunction_selectivity,
    default_selectivity,
    equijoin_selectivity,
    predicate_selectivity,
)
from repro.optimizer.cost import JoinStep, SelectPlanner, estimate_select
from repro.optimizer.planview import estimate_plan

__all__ = [
    "ColumnStatistics",
    "Histogram",
    "TableStatistics",
    "collect_table_statistics",
    "fresh_statistics",
    "conjunction_selectivity",
    "default_selectivity",
    "equijoin_selectivity",
    "predicate_selectivity",
    "JoinStep",
    "SelectPlanner",
    "estimate_select",
    "estimate_plan",
]
