"""Shard pruning and statistics merging for sharded tables.

A :class:`~repro.sources.shard.ShardedSource` scatters pushed SQL to its
members — unless a member's ``ANALYZE`` statistics *prove* the statement
returns nothing there.  The proof obligations are deliberately narrow
and sound:

* a referenced table with a fresh ``row_count == 0`` on the member
  (inner joins over an empty input are empty);
* a conjunct ``col op literal`` whose literal falls wholly outside the
  member's fresh ``[min, max]`` for that column (NULL rows never pass a
  comparison, so only the non-NULL range matters).

Everything uses :func:`repro.relational.executor.compare`, the engine's
own comparison semantics: NULL operands and cross-type orderings compare
``False``, which makes every uncertain rule *not fire* — a shard is only
skipped when the executor itself could never produce a row from it.

Stale or missing statistics contribute nothing (the shard is scattered
to), mirroring the estimator's rule that stale statistics are never
silently used.
"""

from __future__ import annotations

from repro.optimizer.statistics import ColumnStatistics, TableStatistics
from repro.relational import ast


def shard_prunable(stmt, stats_for_table):
    """``True`` when ``stmt`` provably returns no rows on a shard.

    Args:
        stmt: a parsed :class:`~repro.relational.ast.SelectStmt`.
        stats_for_table: table name -> fresh
            :class:`~repro.optimizer.statistics.TableStatistics` for the
            member, or ``None`` where unknown/stale.
    """
    alias_to_table = {ref.alias: ref.table for ref in stmt.tables}
    for ref in stmt.tables:
        stats = stats_for_table.get(ref.table)
        if stats is not None and stats.row_count == 0:
            return True
    for pred in stmt.predicates:
        normalized = _normalize(pred)
        if normalized is None:
            continue
        colref, op, value = normalized
        stats = _column_stats(colref, alias_to_table, stats_for_table)
        if stats is None:
            continue
        if _conjunct_empty(stats, op, value):
            return True
    return False


def _normalize(pred):
    """``(ColRef, op, literal value)`` with the column on the left, or
    ``None`` for shapes pruning does not reason about."""
    left, op, right = pred.left, pred.op, pred.right
    if isinstance(left, ast.Literal) and isinstance(right, ast.ColRef):
        left, right = right, left
        op = _FLIP.get(op, op)
    if not (isinstance(left, ast.ColRef) and isinstance(right, ast.Literal)):
        return None
    return left, op, right.value


_FLIP = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}


def _column_stats(colref, alias_to_table, stats_for_table):
    """The member's :class:`ColumnStatistics` a conjunct refers to."""
    if colref.qualifier is not None:
        table = alias_to_table.get(colref.qualifier)
        if table is None:
            return None
        stats = stats_for_table.get(table)
        return stats.column(colref.column) if stats is not None else None
    # Unqualified: usable only when exactly one referenced table has the
    # column (otherwise the reference is ambiguous to us — don't prune).
    matches = []
    for table in set(alias_to_table.values()):
        stats = stats_for_table.get(table)
        if stats is not None and stats.column(colref.column) is not None:
            matches.append(stats.column(colref.column))
    return matches[0] if len(matches) == 1 else None


def _conjunct_empty(column_stats, op, value):
    """Whether ``col op value`` fails for *every* row on the member."""
    from repro.relational.executor import compare

    lo, hi = column_stats.min, column_stats.max
    if lo is None and hi is None:
        # Every row is NULL in this column; NULL passes no comparison.
        return True
    if op == "=":
        return compare(value, "<", lo) or compare(value, ">", hi)
    if op == "!=":
        # Only a single-valued column can make != universally false.
        return compare(lo, "=", hi) and compare(lo, "=", value)
    if op == "<":
        return compare(lo, ">=", value)
    if op == "<=":
        return compare(lo, ">", value)
    if op == ">":
        return compare(hi, "<=", value)
    if op == ">=":
        return compare(hi, "<", value)
    return False


def merge_table_statistics(stats_list):
    """Combine per-shard statistics into one logical-table view.

    Returns ``None`` unless *every* member contributed fresh statistics
    (a partial merge would under-count rows and mislead the optimizer).
    Row counts add; ranges take the widest span; NDV takes the per-shard
    maximum (a lower bound — shards may hold overlapping value sets);
    null fractions are row-weighted.  Histograms do not merge across
    differently-bucketed ranges and are dropped.
    """
    stats_list = list(stats_list)
    if not stats_list or any(s is None for s in stats_list):
        return None
    first = stats_list[0]
    total_rows = sum(s.row_count for s in stats_list)
    merged = {}
    for name in first.columns:
        per_shard = [s.column(name) for s in stats_list]
        if any(c is None for c in per_shard):
            continue
        merged[name] = _merge_column(name, per_shard, stats_list)
    return TableStatistics(
        first.table,
        total_rows,
        merged,
        version=tuple(s.version for s in stats_list),
        epoch=tuple(s.epoch for s in stats_list),
    )


def _merge_column(name, per_shard, stats_list):
    mins = [c.min for c in per_shard if c.min is not None]
    maxes = [c.max for c in per_shard if c.max is not None]
    total = sum(s.row_count for s in stats_list)
    if total:
        nulls = sum(
            c.null_fraction * s.row_count
            for c, s in zip(per_shard, stats_list)
        )
        null_fraction = nulls / total
    else:
        null_fraction = 0.0
    return ColumnStatistics(
        name,
        max(c.ndv for c in per_shard),
        min(mins) if mins else None,
        max(maxes) if maxes else None,
        null_fraction,
        histogram=None,
    )
