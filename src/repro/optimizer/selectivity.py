"""Selectivity estimation over :mod:`repro.optimizer.statistics`.

Covers exactly the predicate forms the SQL executor evaluates: equality
(``col = const``), ranges (``col < const`` &c.), inequality, and
composite conjunctions (independence assumption — selectivities
multiply).  With fresh statistics the estimates come from NDV and the
equi-width histograms; without them (never analyzed, or stale after
DML) the classic System-R defaults apply.  Estimates are *estimates*:
they only ever steer plan choices, never results.
"""

from __future__ import annotations

from repro.optimizer.statistics import fresh_statistics

#: Defaults used when no (fresh) statistics describe a column.
DEFAULT_EQ_SELECTIVITY = 0.1
DEFAULT_RANGE_SELECTIVITY = 1.0 / 3.0
DEFAULT_NEQ_SELECTIVITY = 0.9
#: Default NDV fraction when a column was never analyzed.
DEFAULT_NDV_FRACTION = 0.1

_RANGE_OPS = ("<", "<=", ">", ">=")


def default_selectivity(op):
    """The statistics-free default for one comparison operator."""
    if op == "=":
        return DEFAULT_EQ_SELECTIVITY
    if op == "!=":
        return DEFAULT_NEQ_SELECTIVITY
    return DEFAULT_RANGE_SELECTIVITY


def predicate_selectivity(table, column, op, literal):
    """Estimated fraction of ``table`` rows passing ``column op literal``.

    Uses fresh statistics when available; falls back to
    :func:`default_selectivity`.  NULLs never pass any comparison, so
    every estimate is scaled by the column's non-NULL fraction.
    """
    stats = fresh_statistics(table)
    col = stats.column(column) if stats is not None else None
    if col is None or stats.row_count == 0:
        return default_selectivity(op)
    non_null = 1.0 - col.null_fraction
    if col.ndv == 0:
        return 0.0
    if op == "=":
        if not _within_range(col, literal):
            return _epsilon(stats)
        return non_null / col.ndv
    if op == "!=":
        return non_null * (1.0 - 1.0 / col.ndv)
    if op in _RANGE_OPS:
        return non_null * _range_fraction(stats, col, op, literal)
    return default_selectivity(op)


def _within_range(col, literal):
    try:
        return col.min <= literal <= col.max
    except TypeError:
        # Cross-type comparison (e.g. string stats, numeric literal):
        # equality across types is always false in this SQL subset.
        return False


def _epsilon(stats):
    """A near-zero selectivity for provably-out-of-range probes."""
    return 1.0 / (2.0 * max(stats.row_count, 1))


def _range_fraction(stats, col, op, literal):
    histogram = col.histogram
    if histogram is not None:
        below = histogram.fraction_below(literal)
        # ``<=`` / ``>`` need the mass *at* the literal too; approximate
        # one value's worth by 1/NDV of the non-NULL mass.
        at_value = (1.0 / col.ndv) if _within_range(col, literal) else 0.0
        if op == "<":
            return below
        if op == "<=":
            return min(1.0, below + at_value)
        if op == ">":
            return max(0.0, 1.0 - below - at_value)
        return max(0.0, 1.0 - below)
    # No histogram (non-numeric column): interpolate on the min/max
    # span when the ordering is comparable, else default.
    try:
        if literal < col.min:
            below = 0.0
        elif literal > col.max or col.max == col.min:
            below = 1.0
        else:
            below = _span_fraction(col, literal)
    except TypeError:
        return DEFAULT_RANGE_SELECTIVITY
    if op in ("<", "<="):
        return below
    return 1.0 - below


def _span_fraction(col, literal):
    if isinstance(literal, (int, float)):
        return (literal - col.min) / (col.max - col.min)
    return DEFAULT_RANGE_SELECTIVITY


def conjunction_selectivity(selectivities):
    """Independence assumption: a conjunction's factors multiply."""
    product = 1.0
    for s in selectivities:
        product *= s
    return product


def column_ndv(table, column):
    """Estimated NDV of a column: fresh statistics, else a fixed
    fraction of the live row count (never below 1)."""
    stats = fresh_statistics(table)
    col = stats.column(column) if stats is not None else None
    if col is not None:
        return max(1.0, float(col.ndv))
    return max(1.0, len(table) * DEFAULT_NDV_FRACTION)


def equijoin_selectivity(left_table, left_column, right_table, right_column):
    """The textbook ``1 / max(ndv_left, ndv_right)`` estimate."""
    return 1.0 / max(
        column_ndv(left_table, left_column),
        column_ndv(right_table, right_column),
    )
