"""Exception hierarchy for the MIX reproduction.

Every error raised by the library derives from :class:`MixError`, so client
code can catch a single base class.  Sub-hierarchies mirror the subsystems:
parsing (XML text, SQL text, XQuery text), planning/translation, the lazy
engine, the rewriter, and the relational substrate.
"""

from __future__ import annotations


class MixError(Exception):
    """Base class of every exception raised by :mod:`repro`."""


class ParseError(MixError):
    """A textual input (XML, SQL, or XQuery) could not be parsed.

    Attributes:
        text: the offending source text (may be ``None``).
        position: character offset of the error, when known.
    """

    def __init__(self, message, text=None, position=None):
        super().__init__(message)
        self.text = text
        self.position = position

    @property
    def line(self):
        """1-based line of the error, or ``None`` when untracked."""
        if self.text is None or self.position is None:
            return None
        return self.text.count("\n", 0, self.position) + 1

    @property
    def column(self):
        """1-based column of the error, or ``None`` when untracked."""
        if self.text is None or self.position is None:
            return None
        last_newline = self.text.rfind("\n", 0, self.position)
        return self.position - last_newline


class XmlParseError(ParseError):
    """Malformed XML text."""


class SqlError(MixError):
    """Base class for relational-substrate errors."""


class SqlParseError(ParseError, SqlError):
    """Malformed SQL text."""


class SchemaError(SqlError):
    """A table/column reference does not match the database schema."""


class TypeMismatchError(SqlError):
    """A value does not conform to its declared column type."""


class IntegrityError(SqlError):
    """A primary-key or uniqueness constraint was violated."""


class XQueryParseError(ParseError):
    """Malformed XQuery text (the paper's Fig. 4 subset)."""


class TranslationError(MixError):
    """The XQuery AST could not be translated to an XMAS plan."""


class PlanError(MixError):
    """An XMAS plan is structurally invalid (unknown variable, arity, ...)."""


class PlanVerificationError(PlanError):
    """The static plan verifier rejected a plan.

    Attributes:
        diagnostics: the :class:`repro.analysis.Diagnostic` findings that
            caused the rejection (at least one has severity ``error``).
        stage: the pipeline stage whose output failed (``translate``, a
            rewrite stage, ``sql-split``, ...), when known.
        rule: for rewrite stages, the name of the rewrite rule whose
            output failed verification (``None`` for non-rewrite
            stages) — the handle tooling uses to attribute a broken
            plan to the rule that broke it.
    """

    def __init__(self, message, diagnostics=(), stage=None, rule=None):
        super().__init__(message)
        self.diagnostics = list(diagnostics)
        self.stage = stage
        self.rule = rule


class EvaluationError(MixError):
    """The engine could not evaluate a plan over the given sources."""


class NavigationError(MixError):
    """An invalid QDOM navigation command (e.g. ``d`` on a leaf id of the
    wrong operator, or a stale node id)."""


class RewriteError(MixError):
    """A rewrite rule produced or was applied to an inconsistent plan,
    or the fixpoint driver failed to terminate.

    Attributes:
        steps: the last-k :class:`~repro.rewriter.engine.RewriteStep`\\ s
            before the failure (rule names + plan fingerprints), so a
            non-terminating rule set names its offenders instead of
            dying opaquely.  Empty for registration-time errors.
        code: the stable diagnostic code (``MIX-E013`` for termination
            failures), or ``None``.
        kind: ``"cycle"`` (a plan fingerprint recurred), ``"divergence"``
            (``max_steps`` exceeded without a detected cycle), or
            ``None`` for other rewrite errors.
    """

    def __init__(self, message, steps=(), code=None, kind=None):
        super().__init__(message)
        self.steps = list(steps)
        self.code = code
        self.kind = kind


class RuleCertificationError(MixError):
    """A strict mediator refused an extension rule that failed static
    certification (:func:`repro.analysis.certify_rules`).

    Attributes:
        diagnostics: the error-severity :class:`repro.analysis.Diagnostic`
            findings, each naming the offending rule.
    """

    def __init__(self, message, diagnostics=()):
        super().__init__(message)
        self.diagnostics = list(diagnostics)


class CompositionError(MixError):
    """Decontextualization / query composition failed (e.g. a node id that
    carries no skolem provenance was used as a query root)."""


class SourceError(MixError):
    """A wrapped source rejected a request or is misconfigured.

    Attributes:
        doc_id: the document the failing request addressed (``None`` for
            requests that are not document-scoped).
        sql: the offending pushed-down SQL text, when the request was an
            :meth:`~repro.sources.base.Source.execute_sql`.
        source: a printable name of the source the request went to.

    The message is kept as the sole ``args`` entry so every subclass
    pickles with the standard machinery (the payload attributes travel
    in ``__dict__``); resilience errors cross the obs export boundary as
    JSON and must survive ``pickle``/``repr`` round-trips.
    """

    def __init__(self, message, doc_id=None, sql=None, source=None):
        super().__init__(message)
        self.doc_id = doc_id
        self.sql = sql
        self.source = source


class UnknownSourceError(SourceError):
    """A plan references a source id that the mediator does not know.

    Attributes:
        known: the sorted list of names the catalog *does* know, so the
            error message (and any tooling on top) can suggest
            alternatives.
    """

    def __init__(self, message, doc_id=None, known=()):
        super().__init__(message, doc_id=doc_id)
        self.known = list(known)


class TransientSourceError(SourceError):
    """A source request failed in a way that may succeed when retried
    (a dropped connection, an injected transient fault, ...).

    The retry policy of :class:`repro.resilience.ResilientSource`
    retries exactly this class (and its subclasses) by default.
    """


class SourceTimeoutError(TransientSourceError):
    """A source request exceeded its latency budget.

    Attributes:
        limit: the configured budget in (clock) seconds.
        elapsed: how long the request actually took.
    """

    def __init__(self, message, doc_id=None, sql=None, source=None,
                 limit=None, elapsed=None):
        super().__init__(message, doc_id=doc_id, sql=sql, source=source)
        self.limit = limit
        self.elapsed = elapsed


class ShardError(SourceError):
    """One member of a sharded table failed during scatter-gather.

    Raised by the merge cursor at the stream position where the failed
    member's rows would have appeared; the surviving members keep
    streaming, so an engine that degrades substitutes a single
    ``<mix:error>`` stub for the lost shard and the answer stays
    partial instead of dead.

    Attributes:
        shard: printable name of the failing member.
        index: the member's position in the shard list.
    """

    def __init__(self, message, doc_id=None, sql=None, source=None,
                 shard=None, index=None):
        super().__init__(message, doc_id=doc_id, sql=sql, source=source)
        self.shard = shard
        self.index = index


class CircuitOpenError(SourceError):
    """A request was rejected without reaching the source because its
    circuit breaker is open (the source failed too often recently).

    Attributes:
        retry_after: clock seconds until the breaker will admit a probe.
    """

    def __init__(self, message, doc_id=None, source=None, retry_after=None):
        super().__init__(message, doc_id=doc_id, source=source)
        self.retry_after = retry_after


class ServerError(MixError):
    """Base class of the mediator server's typed errors.

    Every subclass carries a stable wire code (``MIX-E-*``), which is
    what crosses the JSON-lines protocol instead of a Python stack
    trace; clients dispatch on the code, never on the message text.
    """

    #: The stable wire code; subclasses override.
    code = "MIX-E-SERVER"


class ProtocolError(ServerError):
    """A frame could not be decoded: not JSON, not an object, or
    missing/invalid required fields (``id``, ``op``)."""

    code = "MIX-E-PROTO"


class FrameTooLargeError(ProtocolError):
    """An incoming frame exceeded the server's frame-size limit."""

    code = "MIX-E-FRAME"


class UnknownOpError(ProtocolError):
    """The request named an operation the server does not export.

    Attributes:
        known: the sorted op names the server does export.
    """

    code = "MIX-E-OP"

    def __init__(self, message, known=()):
        known = list(known)
        if known:
            message = "{} (known ops: {})".format(
                message, ", ".join(known)
            )
        super().__init__(message)
        self.known = known


class SessionError(ServerError):
    """A request addressed a session id that is not open (never opened,
    already closed, or swept after its connection died)."""

    code = "MIX-E-SESSION"


class StaleHandleError(ServerError):
    """A request addressed a node handle its session does not hold."""

    code = "MIX-E-HANDLE"


class SessionLimitError(ServerError):
    """Opening one more session would exceed ``max_sessions`` (or the
    session would exceed one of its own resource caps)."""

    code = "MIX-E-LIMIT"


class BackpressureError(ServerError):
    """The server is at its in-flight request limit; the request was
    rejected immediately instead of queueing unboundedly.  Clients
    should back off and retry."""

    code = "MIX-E-BUSY"


class ResultTooLargeError(ServerError):
    """A reply would exceed the per-request result-size cap; re-ask
    with a narrower query or a bounded bulk op (``walk`` budget)."""

    code = "MIX-E-SIZE"
