"""JSON export of traces.

A trace is a :class:`~repro.obs.span.Span` tree; export flattens nothing —
the JSON mirrors the causal structure, so a consumer can walk from the
root navigation command down to the operator spans and the SQL events
exactly as the mediator produced them.
"""

from __future__ import annotations

import json

from repro.obs.span import Span


def trace_to_dict(trace, mask_times=False):
    """A JSON-serializable dict of ``trace``.

    ``trace`` may be a :class:`Span` or an
    :class:`~repro.obs.instrument.Instrument` (its last trace is used).
    """
    span = _as_span(trace)
    if span is None:
        return None
    return span.to_dict(mask_times=mask_times)


def trace_to_json(trace, mask_times=False, indent=2):
    """``trace`` serialized as a JSON string (``"null"`` when empty)."""
    return json.dumps(
        trace_to_dict(trace, mask_times=mask_times),
        indent=indent,
        sort_keys=True,
        default=str,
    )


def traces_to_json(instrument, mask_times=False, indent=2):
    """Every recorded trace of ``instrument``, as one JSON array."""
    return json.dumps(
        [t.to_dict(mask_times=mask_times) for t in instrument.traces()],
        indent=indent,
        sort_keys=True,
        default=str,
    )


def _as_span(trace):
    if trace is None or isinstance(trace, Span):
        return trace
    last = getattr(trace, "last_trace", None)
    if last is not None:
        return last()
    raise TypeError(
        "expected a Span or an Instrument, got {!r}".format(trace)
    )
