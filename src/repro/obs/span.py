"""Spans: one node of a causal trace.

A span records one unit of attributable work — a QDOM navigation
command, a query pipeline stage, one lazy operator's pulls, a source
scan — together with everything that happened *because of it*: child
spans, counter increments, and point events (e.g. the exact SQL text a
source received).  Spans form the tree the paper's Fig.-22 argument is
about: a ``d`` command at the client fans out into a bounded set of
operator pulls and, at the leaves, SQL on the sources.

Two kinds of children exist:

* *command* children (navigation/query spans) are appended in arrival
  order, one per command;
* *merged* children (operator/source spans) are deduplicated by a key —
  a lazy operator pulled 40 times under one navigation shows up as one
  span with ``calls=40``, not 40 spans.
"""

from __future__ import annotations


class Span:
    """One node of a trace tree.

    Attributes:
        span_id: trace-local id (``s1``, ``s2``, ...; assigned in
            creation order, so traces are stable across runs).
        name: what the work was (``d``, ``query``, ``gBy``, ``rQ``...).
        kind: coarse category — ``navigation``, ``query``, ``operator``,
            ``source``, or ``explain``.
        attributes: static facts known at open time (oid, SQL text, ...).
        counters: counter increments attributed to this span (increments
            made while a *descendant* was current belong to the
            descendant, not to this span).
        events: ordered ``(name, detail, attrs)`` point records.
        children: child spans, in first-seen order.
        calls: how many times this span was entered (merged spans > 1).
        elapsed: cumulative wall-clock seconds spent inside this span
            (children included, as in ``EXPLAIN ANALYZE`` actual time).
    """

    __slots__ = (
        "span_id",
        "name",
        "kind",
        "attributes",
        "counters",
        "events",
        "children",
        "calls",
        "elapsed",
        "_merged",
    )

    def __init__(self, span_id, name, kind="span", attributes=None):
        self.span_id = span_id
        self.name = name
        self.kind = kind
        self.attributes = dict(attributes or {})
        self.counters = {}
        self.events = []
        self.children = []
        self.calls = 0
        self.elapsed = 0.0
        self._merged = {}

    # -- building ---------------------------------------------------------------

    def add_child(self, span):
        """Append a command child (one span per occurrence)."""
        self.children.append(span)
        return span

    def merged_child(self, key, make_span):
        """The merged child for ``key``, created by ``make_span()`` once."""
        span = self._merged.get(key)
        if span is None:
            span = make_span()
            self._merged[key] = span
            self.children.append(span)
        return span

    def bump(self, counter, amount=1):
        """Attribute a counter increment to this span."""
        self.counters[counter] = self.counters.get(counter, 0) + amount

    def add_event(self, name, detail=None, attrs=None):
        """Record a point event (e.g. ``("sql", "SELECT ...", {...})``)."""
        self.events.append((name, detail, dict(attrs or {})))

    # -- reading ----------------------------------------------------------------

    def iter_spans(self):
        """This span and every descendant, preorder."""
        yield self
        for child in self.children:
            for span in child.iter_spans():
                yield span

    def find(self, name=None, kind=None):
        """First descendant (or self) matching ``name`` and/or ``kind``."""
        for span in self.iter_spans():
            if name is not None and span.name != name:
                continue
            if kind is not None and span.kind != kind:
                continue
            return span
        return None

    def find_all(self, name=None, kind=None):
        """Every matching span, preorder."""
        out = []
        for span in self.iter_spans():
            if name is not None and span.name != name:
                continue
            if kind is not None and span.kind != kind:
                continue
            out.append(span)
        return out

    def sql_statements(self):
        """Every SQL text recorded in this subtree, in trace order.

        Collects both ``sql`` events (statements a source actually
        received) and ``sql`` attributes (the text an ``rQ`` operator
        span carries), deduplicated while preserving order.
        """
        seen = []
        for span in self.iter_spans():
            sql = span.attributes.get("sql")
            if sql is not None and sql not in seen:
                seen.append(sql)
            for name, detail, __ in span.events:
                if name == "sql" and detail is not None and detail not in seen:
                    seen.append(detail)
        return seen

    def total_counter(self, counter):
        """Sum of ``counter`` over this subtree."""
        return sum(s.counters.get(counter, 0) for s in self.iter_spans())

    # -- export -----------------------------------------------------------------

    def to_dict(self, mask_times=False):
        """A JSON-serializable dict of the subtree.

        ``mask_times=True`` replaces elapsed times with ``None`` so the
        output is byte-stable across runs (golden tests).
        """
        return {
            "span_id": self.span_id,
            "name": self.name,
            "kind": self.kind,
            "calls": self.calls,
            "elapsed_ms": None if mask_times else round(self.elapsed * 1e3, 3),
            "attributes": dict(self.attributes),
            "counters": dict(self.counters),
            "events": [
                {"name": n, "detail": d, "attributes": a}
                for n, d, a in self.events
            ],
            "children": [c.to_dict(mask_times=mask_times) for c in self.children],
        }

    def render(self, mask_times=False):
        """An indented text rendering of the subtree."""
        lines = []
        self._render(lines, 0, mask_times)
        return "\n".join(lines)

    def _render(self, lines, depth, mask_times):
        pad = "  " * depth
        bits = ["{}{} [{}]".format(pad, self.name, self.kind)]
        if self.calls > 1:
            bits.append("calls={}".format(self.calls))
        if not mask_times:
            bits.append("time={:.3f}ms".format(self.elapsed * 1e3))
        for key in sorted(self.counters):
            bits.append("{}={}".format(key, self.counters[key]))
        lines.append(" ".join(bits))
        for name, detail, __ in self.events:
            lines.append("{}  * {}: {}".format(pad, name, detail))
        for child in self.children:
            child._render(lines, depth + 1, mask_times)

    def __repr__(self):
        return "Span({}, {}, {} children)".format(
            self.name, self.kind, len(self.children)
        )
