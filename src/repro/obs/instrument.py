"""The instrumentation bus: counters, timers, node metrics, and spans.

One :class:`Instrument` replaces the seed's ``StatsRegistry``/``Profiler``
pair.  Everything the stack wants to report goes through it:

* **counters/timers** — the registry interface the sources, the
  relational engine, and the benchmarks already speak (``incr``,
  ``get``, ``snapshot``, ``diff``, ``timer``, ``elapsed``);
* **node metrics** — per-plan-operator tuple counts and cumulative wall
  time, keyed on stable :func:`~repro.obs.tokens.node_token`\\ s (the
  ``EXPLAIN ANALYZE`` numbers);
* **spans** — the causal trace: a *command span* (one per QDOM
  navigation or query) is the root; *operator spans* (merged per plan
  node) nest under whatever was running when the operator pulled; SQL
  events land on the span that caused them.

Counter increments made while a span is active are additionally
attributed to that span, which is what lets a trace answer "which
navigation command caused which source work".

The registry surface is a strict superset of the seed ``StatsRegistry``,
so ``repro.stats.StatsRegistry`` is now simply an alias of this class.

**Thread model.**  One instrument may be shared by many server threads
(:mod:`repro.server` multiplexes hundreds of sessions over one
mediator), so counters, timers, and node metrics are updated under a
lock — concurrent increments never lose counts.  The span *stack* is
thread-local: each thread nests its own command/operator spans, and
completed root traces from every thread land on the shared trace ring.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import deque
from contextlib import contextmanager

from repro.obs.span import Span

#: Root traces retained per instrument (older ones are evicted).
TRACE_CAPACITY = 256


class Instrument:
    """A named bag of counters/timers plus a span-based tracer."""

    def __init__(self, trace_capacity=TRACE_CAPACITY):
        self._counters = {}
        self._timers = {}
        self._node_counts = {}
        self._node_times = {}
        self._lock = threading.Lock()
        self._local = threading.local()
        self._traces = deque(maxlen=trace_capacity)
        self._span_ids = itertools.count(1)

    @property
    def _stack(self):
        """This thread's span stack (each thread nests independently)."""
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    # -- counters and timers (the StatsRegistry interface) ----------------------------

    def incr(self, name, amount=1):
        """Increase counter ``name`` by ``amount`` (default 1).

        The increment is also attributed to the currently active span,
        if any.
        """
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + amount
        stack = self._stack
        if stack:
            stack[-1].bump(name, amount)

    def get(self, name):
        """Current value of counter ``name`` (0 if never incremented)."""
        return self._counters.get(name, 0)

    def reset(self):
        """Zero every counter, timer, node metric, and recorded trace.

        Only the calling thread's span stack is cleared; other threads'
        in-flight spans keep nesting correctly.
        """
        with self._lock:
            self._counters.clear()
            self._timers.clear()
            self._node_counts.clear()
            self._node_times.clear()
        del self._stack[:]
        self._traces.clear()

    @contextmanager
    def timer(self, name):
        """Context manager accumulating wall-clock seconds under ``name``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            with self._lock:
                self._timers[name] = self._timers.get(name, 0.0) + elapsed

    def elapsed(self, name):
        """Total seconds accumulated by :meth:`timer` under ``name``."""
        return self._timers.get(name, 0.0)

    def snapshot(self):
        """An immutable copy of all counters (timers under ``time:<name>``)."""
        with self._lock:
            merged = dict(self._counters)
            for name, secs in self._timers.items():
                merged["time:" + name] = secs
        return merged

    def diff(self, before):
        """Counter deltas relative to an earlier :meth:`snapshot`."""
        now = self.snapshot()
        keys = set(now) | set(before)
        return {k: now.get(k, 0) - before.get(k, 0) for k in keys}

    # -- node metrics (the EXPLAIN ANALYZE numbers) -----------------------------------

    def record_node(self, token, amount=1):
        """Count ``amount`` tuples produced by the plan node ``token``."""
        with self._lock:
            self._node_counts[token] = (
                self._node_counts.get(token, 0) + amount
            )

    def node_count(self, token):
        """Tuples the node produced so far (0 when it never ran)."""
        return self._node_counts.get(token, 0)

    def node_elapsed(self, token):
        """Cumulative wall-clock seconds spent pulling from the node."""
        return self._node_times.get(token, 0.0)

    def node_counts(self):
        """A copy of the full ``token -> tuples`` mapping."""
        with self._lock:
            return dict(self._node_counts)

    def merge_node_counts(self, counts):
        """Fold an external ``token -> tuples`` mapping in (adapter use)."""
        for token, amount in counts.items():
            self.record_node(token, amount)

    # -- spans ------------------------------------------------------------------------

    @property
    def current_span(self):
        """The innermost active span, or ``None`` outside any trace."""
        return self._stack[-1] if self._stack else None

    def _fresh_span(self, name, kind, attrs):
        return Span(
            "s{}".format(next(self._span_ids)), name, kind, attrs
        )

    @contextmanager
    def command_span(self, name, kind="navigation", **attrs):
        """One span per occurrence — QDOM commands and query stages.

        When no trace is active, the span becomes the root of a new
        trace, recorded under :meth:`traces` on completion.
        """
        span = self._fresh_span(name, kind, attrs)
        parent = self._stack[-1] if self._stack else None
        if parent is not None:
            parent.add_child(span)
        self._stack.append(span)
        span.calls += 1
        start = time.perf_counter()
        try:
            yield span
        finally:
            span.elapsed += time.perf_counter() - start
            self._stack.pop()
            if parent is None:
                self._traces.append(span)

    @contextmanager
    def operator_span(self, name, key=None, kind="operator", **attrs):
        """A merged child span under the current span.

        Repeated entries with the same ``key`` (under the same parent)
        accumulate into a single span — a lazy operator pulled 40 times
        by one navigation is one span with ``calls=40``.  Node wall time
        is accumulated under ``key`` whether or not a trace is active;
        span bookkeeping happens only inside an active trace.
        """
        parent = self._stack[-1] if self._stack else None
        span = None
        if parent is not None:
            span = parent.merged_child(
                key or name, lambda: self._fresh_span(name, kind, attrs)
            )
            self._stack.append(span)
            span.calls += 1
        start = time.perf_counter()
        try:
            yield span
        finally:
            elapsed = time.perf_counter() - start
            if key is not None:
                with self._lock:
                    self._node_times[key] = (
                        self._node_times.get(key, 0.0) + elapsed
                    )
            if span is not None:
                span.elapsed += elapsed
                self._stack.pop()

    def event(self, name, detail=None, **attrs):
        """Record a point event on the active span (no-op outside one)."""
        if self._stack:
            self._stack[-1].add_event(name, detail, attrs)

    # -- trace access -----------------------------------------------------------------

    def traces(self):
        """Completed root spans, oldest first (bounded ring)."""
        return list(self._traces)

    def last_trace(self):
        """The most recently completed root span, or ``None``."""
        return self._traces[-1] if self._traces else None

    def clear_traces(self):
        """Drop recorded traces, keeping counters and node metrics."""
        self._traces.clear()

    def __repr__(self):
        parts = ", ".join(
            "{}={}".format(k, v) for k, v in sorted(self.snapshot().items())
        )
        return "Instrument({})".format(parts)
