"""``EXPLAIN ANALYZE`` for XMAS plans, over the instrumentation bus.

:func:`render_explain` prints a plan in the paper's figure style with the
per-node metrics an :class:`~repro.obs.instrument.Instrument` collected —
tuples produced, cumulative wall time, and the exact SQL an ``rQ`` node
ships.  :func:`explain_analyze` is the one-call version: translate,
optimize, evaluate (driving the lazy engine with a full navigation walk),
and render.

Times are wall-clock and therefore unstable; ``mask_times=True`` omits
them so the output is byte-identical across runs — that is what the
golden-trace tests snapshot to catch silent pushdown regressions.
"""

from __future__ import annotations

from repro.obs.instrument import Instrument
from repro.obs.tokens import node_token


def render_explain(plan, instrument=None, mask_times=False):
    """The plan rendered with per-node tuple counts (and times).

    Nodes that never ran under ``instrument`` show ``tuples=0``; with no
    instrument at all the annotation is omitted entirely (plain
    ``EXPLAIN`` without ``ANALYZE``).
    """
    lines = []
    _render(plan, 0, lines, instrument, mask_times)
    return "\n".join(lines)


def _render(node, depth, lines, instrument, mask_times):
    from repro.algebra import operators as ops
    from repro.algebra.printer import render_operator

    pad = "  " * depth
    line = pad + render_operator(node)
    if instrument is not None:
        token = node_token(node)
        line += "   [tuples={}".format(instrument.node_count(token))
        if not mask_times:
            line += " time={:.3f}ms".format(
                instrument.node_elapsed(token) * 1e3
            )
        line += "]"
    lines.append(line)
    if isinstance(node, ops.RelQuery):
        lines.append("{}    sql: {}".format(pad, node.sql))
    if isinstance(node, ops.Apply):
        lines.append(pad + "  p:")
        _render(node.plan, depth + 2, lines, instrument, mask_times)
    for child in node.children:
        _render(child, depth + 1, lines, instrument, mask_times)


def explain_analyze(mediator, query_text, mask_times=False):
    """Run ``query_text`` through the mediator pipeline and explain it.

    The plan goes through the mediator's own translate/optimize/push
    stages, then is evaluated on a dedicated :class:`Instrument` (so the
    numbers reflect exactly this query).  The lazy engine is driven by a
    full navigation walk — the counts therefore show what a client
    walking the whole result would cost.  Returns the rendered text.
    """
    text, __, __ = explain_analyze_with_trace(
        mediator, query_text, mask_times=mask_times
    )
    return text


def explain_analyze_with_trace(mediator, query_text, mask_times=False):
    """Like :func:`explain_analyze` but returns ``(text, trace, plan)``.

    ``trace`` is the root :class:`~repro.obs.span.Span` of the
    evaluation, ready for :func:`repro.obs.export.trace_to_json`.
    """
    from repro.engine.eager import EagerEngine
    from repro.engine.lazy import LazyEngine
    from repro.engine.vtree import VNode, walk_fully

    instrument = Instrument()
    plan = mediator.translate(query_text)
    plan = mediator._expand_views(plan)
    exec_plan, __ = mediator.optimize_plan(plan)
    with instrument.command_span(
        "explain", kind="explain", query=_clip(query_text)
    ):
        if mediator.lazy:
            engine = LazyEngine(mediator.catalog, stats=instrument)
            root = engine.evaluate_tree(exec_plan)
            walk_fully(VNode.root(root))
        else:
            engine = EagerEngine(mediator.catalog, stats=instrument)
            engine.evaluate_tree(exec_plan)
    text = render_explain(exec_plan, instrument, mask_times=mask_times)
    footer = "-- tuples={} rq_statements={}".format(
        instrument.get("operator_tuples"), instrument.get("rq_statements")
    )
    return text + "\n" + footer, instrument.last_trace(), exec_plan


def _clip(text, limit=160):
    return " ".join(str(text).split())[:limit]
