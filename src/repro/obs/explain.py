"""``EXPLAIN ANALYZE`` for XMAS plans, over the instrumentation bus.

:func:`render_explain` prints a plan in the paper's figure style with the
per-node metrics an :class:`~repro.obs.instrument.Instrument` collected —
tuples produced, cumulative wall time, and the exact SQL an ``rQ`` node
ships.  :func:`explain_analyze` is the one-call version: translate,
optimize, evaluate (driving the lazy engine with a full navigation walk),
and render.

Times are wall-clock and therefore unstable; ``mask_times=True`` omits
them so the output is byte-identical across runs — that is what the
golden-trace tests snapshot to catch silent pushdown regressions.
"""

from __future__ import annotations

from repro.obs.instrument import Instrument
from repro.obs.tokens import node_token


def render_explain(plan, instrument=None, mask_times=False, estimates=None):
    """The plan rendered with per-node tuple counts (and times).

    Nodes that never ran under ``instrument`` show ``tuples=0``; with no
    instrument at all the annotation is omitted entirely (plain
    ``EXPLAIN`` without ``ANALYZE``).  ``estimates`` — the optimizer's
    ``{node_token: rows}`` map (:func:`repro.optimizer.planview
    .estimate_plan`) — switches an estimated node's annotation to
    ``est=… act=…`` so misestimates sit next to their actuals; nodes
    without an estimate (and every node when the map is empty, e.g. on
    a never-analyzed source) keep the plain ``tuples=`` form.
    """
    lines = []
    _render(plan, 0, lines, instrument, mask_times, estimates or {})
    return "\n".join(lines)


def _render(node, depth, lines, instrument, mask_times, estimates):
    from repro.algebra import operators as ops
    from repro.algebra.printer import render_operator

    pad = "  " * depth
    line = pad + render_operator(node)
    if instrument is not None:
        token = node_token(node)
        if token in estimates:
            line += "   [est={} act={}".format(
                estimates[token], instrument.node_count(token)
            )
        else:
            line += "   [tuples={}".format(instrument.node_count(token))
        if not mask_times:
            line += " time={:.3f}ms".format(
                instrument.node_elapsed(token) * 1e3
            )
        line += "]"
    lines.append(line)
    if isinstance(node, ops.RelQuery):
        lines.append("{}    sql: {}".format(pad, node.sql))
    if isinstance(node, ops.Apply):
        lines.append(pad + "  p:")
        _render(node.plan, depth + 2, lines, instrument, mask_times,
                estimates)
    for child in node.children:
        _render(child, depth + 1, lines, instrument, mask_times, estimates)


def explain_analyze(mediator, query_text, mask_times=False):
    """Run ``query_text`` through the mediator pipeline and explain it.

    The plan goes through the mediator's own translate/optimize/push
    stages, then is evaluated on a dedicated :class:`Instrument` (so the
    numbers reflect exactly this query).  The lazy engine is driven by a
    full navigation walk — the counts therefore show what a client
    walking the whole result would cost.  Returns the rendered text.
    """
    text, __, __ = explain_analyze_with_trace(
        mediator, query_text, mask_times=mask_times
    )
    return text


def explain_analyze_with_trace(mediator, query_text, mask_times=False):
    """Like :func:`explain_analyze` but returns ``(text, trace, plan)``.

    ``trace`` is the root :class:`~repro.obs.span.Span` of the
    evaluation, ready for :func:`repro.obs.export.trace_to_json`.
    """
    from repro.engine.eager import EagerEngine
    from repro.engine.lazy import LazyEngine
    from repro.engine.vtree import VNode, walk_fully

    instrument = Instrument()
    # Through the mediator's prepare() stage, so the plan cache is
    # consulted exactly as a client query would (and the footer can
    # say whether compilation was skipped).
    exec_plan, __, plan_status = mediator.prepare(query_text)
    rewrite_rules = tuple(
        getattr(mediator, "last_rewrite_rules", ()) or ()
    )
    verify_report = _verify_report(mediator, query_text)
    policy = getattr(mediator, "on_source_error", "raise")
    before = _resilience_snapshot(mediator.catalog)
    cache_before = _cache_snapshot(mediator.catalog)
    shard_before = _shard_snapshot(mediator.catalog)
    block_size = getattr(mediator, "block_size", 1)
    with instrument.command_span(
        "explain", kind="explain", query=_clip(query_text)
    ):
        if mediator.lazy:
            engine = LazyEngine(
                mediator.catalog, stats=instrument, on_source_error=policy,
                block_size=block_size,
            )
            root = engine.evaluate_tree(exec_plan)
            if block_size > 1:
                # Block mode: the walk rides the prefetch path with the
                # explain instrument attached, so the footer's
                # prefetch_hits reflect this evaluation.
                walk_fully(
                    VNode.root(root, obs=instrument, prefetch=block_size)
                )
            else:
                walk_fully(VNode.root(root))
        else:
            engine = EagerEngine(
                mediator.catalog, stats=instrument, on_source_error=policy
            )
            engine.evaluate_tree(exec_plan)
        after = _resilience_snapshot(mediator.catalog)
        resilience = _resilience_deltas(before, after)
        cache_deltas = _cache_deltas(
            cache_before, _cache_snapshot(mediator.catalog)
        )
        shard_deltas = _shard_deltas(
            shard_before, _shard_snapshot(mediator.catalog)
        )
        instrument.event("cache", "plan_cache={}".format(plan_status))
        for name, count in _rule_steps(rewrite_rules):
            # Inside the command span: JSON traces carry the rewrite
            # provenance alongside the cache and verify summaries.
            instrument.event(
                "rewrite", "rule={} steps={}".format(name, count)
            )
        if verify_report is not None:
            # Inside the command span: `explain --json` traces carry the
            # static-verification verdict alongside the cache summary.
            instrument.event("verify", _verify_summary(verify_report))
        for entry in cache_deltas:
            # Inside the command span: the JSON trace export carries the
            # per-source cache summary alongside the spans.
            instrument.event(
                "cache",
                "hits={hits} misses={misses} evictions={evictions} "
                "invalidations={invalidations} "
                "tuples_shipped={tuples_shipped} "
                "tuples_from_cache={tuples_from_cache}".format(**entry),
                source=entry["source"],
            )
        for entry in shard_deltas:
            # Inside the command span: the JSON trace export carries the
            # per-fleet scatter summary alongside the spans.
            instrument.event(
                "shard",
                "shards={shards} scattered={scattered} pruned={pruned} "
                "failed={failed}".format(**entry),
                source=entry["source"],
            )
        for entry in resilience:
            # Inside the command span, so the JSON trace export carries
            # the per-source resilience summary alongside the spans.
            instrument.event(
                "resilience",
                "retries={retries} timeouts={timeouts} "
                "failures={failures} degraded={degraded}".format(**entry),
                **{"source": entry["source"],
                   "breaker": str(entry["breaker"]),
                   "transitions": ",".join(entry["transitions"]) or "-"}
            )
    estimates = {}
    if getattr(mediator, "cost_optimizer", False):
        from repro.optimizer.planview import estimate_plan

        estimates = estimate_plan(exec_plan, mediator.catalog)
    text = render_explain(
        exec_plan, instrument, mask_times=mask_times, estimates=estimates
    )
    footer = "-- tuples={} rq_statements={}".format(
        instrument.get("operator_tuples"), instrument.get("rq_statements")
    )
    if block_size > 1:
        # Only in block mode: the seed's tuple-mode goldens stay
        # byte-identical at block_size=1.
        footer += (
            "\n-- block: size={} blocks_shipped={} "
            "prefetch_hits={}".format(
                block_size,
                instrument.get("blocks_shipped"),
                instrument.get("prefetch_hits"),
            )
        )
    for name, count in _rule_steps(rewrite_rules):
        # Only when the rewrite fired at all: queries whose plans are
        # already in normal form (the seed's goldens among them) keep
        # their byte-identical footers.
        footer += "\n-- rewrite: rule={} steps={}".format(name, count)
    footer += "\n-- plan_cache: {}".format(plan_status)
    if verify_report is not None:
        footer += "\n-- verified: {}".format(_verify_summary(verify_report))
    for entry in cache_deltas:
        footer += (
            "\n-- cache[{source}]: hits={hits} misses={misses} "
            "evictions={evictions} invalidations={invalidations} "
            "tuples_shipped={tuples_shipped} "
            "tuples_from_cache={tuples_from_cache}".format(**entry)
        )
    for entry in shard_deltas:
        footer += (
            "\n-- shard[{source}]: shards={shards} scattered={scattered} "
            "pruned={pruned} failed={failed}".format(**entry)
        )
    for entry in resilience:
        footer += (
            "\n-- resilience[{source}]: retries={retries} "
            "timeouts={timeouts} failures={failures} degraded={degraded} "
            "circuit_rejections={circuit_rejections} "
            "breaker={breaker} transitions={transitions_text}".format(
                transitions_text=",".join(entry["transitions"]) or "-",
                **entry
            )
        )
    return text + "\n" + footer, instrument.last_trace(), exec_plan


def _rule_steps(rewrite_rules):
    """``(rule_name, fire_count)`` pairs in first-fired order."""
    order = []
    counts = {}
    for name in rewrite_rules:
        if name not in counts:
            order.append(name)
            counts[name] = 0
        counts[name] += 1
    return [(name, counts[name]) for name in order]


def _verify_report(mediator, query_text):
    """The static per-stage verification report, or ``None`` for hosts
    without the analysis subsystem (plain engine drivers in tests)."""
    verify = getattr(mediator, "verify_query", None)
    if not callable(verify):
        return None
    return verify(query_text)


def _verify_summary(report):
    """``<n> stages`` or a failure naming the first broken stage."""
    if report.ok:
        return "{} stages".format(report.stage_count)
    first = next(d for d in report.diagnostics if d.is_error)
    return "FAILED at {} ({})".format(report.failed_stage, first.code)


_HEALTH_COUNTERS = (
    "retries", "failures", "timeouts", "degraded", "circuit_rejections"
)


_CACHE_COUNTERS = (
    "hits", "misses", "evictions", "invalidations",
    "tuples_shipped", "tuples_from_cache",
)


def _cache_snapshot(catalog):
    """Current SQL-cache health of every caching source in the catalog."""
    sources_fn = getattr(catalog, "sources", None)
    if sources_fn is None:
        return {}
    out = {}
    for source in sources_fn():
        health_fn = getattr(source, "sql_cache_health", None)
        if callable(health_fn):
            health = health_fn()
            if health is not None:
                out[health["source"]] = health
    return out


def _cache_deltas(before, after):
    """What each source's result cache did during one evaluation."""
    deltas = []
    for name in after:
        pre = before.get(name, {})
        entry = {"source": name}
        for counter in _CACHE_COUNTERS:
            entry[counter] = after[name][counter] - pre.get(counter, 0)
        deltas.append(entry)
    return deltas


_SHARD_COUNTERS = ("scattered", "pruned", "failed")


def _shard_snapshot(catalog):
    """Current scatter health of every sharded source in the catalog."""
    sources_fn = getattr(catalog, "sources", None)
    if sources_fn is None:
        return {}
    out = {}
    for source in sources_fn():
        health_fn = getattr(source, "shard_health", None)
        if callable(health_fn):
            health = health_fn()
            if health is not None:
                out[health["source"]] = health
    return out


def _shard_deltas(before, after):
    """What each sharded source's scatter-gather did in one evaluation."""
    deltas = []
    for name in after:
        pre = before.get(name, {})
        entry = {"source": name, "shards": after[name]["shards"]}
        for counter in _SHARD_COUNTERS:
            entry[counter] = after[name][counter] - pre.get(counter, 0)
        deltas.append(entry)
    return deltas


def _resilience_snapshot(catalog):
    """Current health of every resilient source the catalog knows."""
    sources_fn = getattr(catalog, "sources", None)
    if sources_fn is None:
        return {}
    out = {}
    for source in sources_fn():
        health_fn = getattr(source, "resilience_health", None)
        if callable(health_fn):
            health = health_fn()
            if health is not None:
                out[health["source"]] = health
    return out


def _resilience_deltas(before, after):
    """What each resilient source went through during one evaluation."""
    deltas = []
    for name in after:
        pre = before.get(name, {})
        entry = {"source": name}
        for counter in _HEALTH_COUNTERS:
            entry[counter] = after[name][counter] - pre.get(counter, 0)
        seen = len(pre.get("breaker_transitions", []))
        entry["transitions"] = after[name]["breaker_transitions"][seen:]
        entry["breaker"] = after[name]["breaker"]
        deltas.append(entry)
    return deltas


def _clip(text, limit=160):
    return " ".join(str(text).split())[:limit]
