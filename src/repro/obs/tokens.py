"""Stable identity tokens for plan nodes.

The seed profiler keyed per-operator counts on ``id(plan_node)``.  CPython
reuses ids after garbage collection, so two plans profiled in one process
could silently alias each other's counts.  A *token* is a process-unique
string stamped onto the node itself the first time it is observed
(``"join#17"``), so the key lives exactly as long as the node and can
never be recycled onto a different operator.

Objects that cannot carry attributes (``__slots__``-only classes, bare
``object()``) are handled through a caller-owned ``fallback`` dict that
keeps a strong reference to the node — the reference pins the id, which
makes the derived token equally stable.
"""

from __future__ import annotations

import itertools

_TOKEN_ATTR = "_obs_token"
_counter = itertools.count(1)


def node_token(node, fallback=None):
    """The stable token of ``node``, minting one on first sight.

    Args:
        node: any object, typically an XMAS plan operator.
        fallback: optional dict used for nodes that reject attribute
            assignment; it maps ``id(node) -> (node, token)`` and must be
            owned (and eventually cleared) by the caller.
    """
    token = getattr(node, _TOKEN_ATTR, None)
    if token is not None:
        return token
    token = "{}#{}".format(
        getattr(node, "opname", type(node).__name__), next(_counter)
    )
    try:
        setattr(node, _TOKEN_ATTR, token)
    except (AttributeError, TypeError):
        if fallback is None:
            raise
        entry = fallback.get(id(node))
        if entry is not None and entry[0] is node:
            return entry[1]
        fallback[id(node)] = (node, token)
    return token


def peek_token(node, fallback=None):
    """The node's token if one was already minted, else ``None``."""
    token = getattr(node, _TOKEN_ATTR, None)
    if token is not None:
        return token
    if fallback is not None:
        entry = fallback.get(id(node))
        if entry is not None and entry[0] is node:
            return entry[1]
    return None
