"""repro.obs — the unified observability layer.

One :class:`Instrument` is the single bus every layer reports to:

* the relational engine and the wrappers bump **counters** (SQL issued,
  tuples shipped, rows scanned) exactly as they did against the old
  ``StatsRegistry`` — the interface is unchanged;
* the engines record **node metrics** (tuples + wall time per plan
  operator, keyed on stable :func:`node_token`\\ s) — the
  ``EXPLAIN ANALYZE`` numbers;
* QDOM navigation commands open **spans**, lazy operators nest merged
  child spans under them, and SQL text lands as events — so a single
  ``d`` at the client yields a causal trace down to the exact SQL the
  relational source received.

Quick tour::

    from repro.obs import Instrument, trace_to_json

    inst = Instrument()
    db = Database("shop", stats=inst)          # counters flow in
    mediator = Mediator(stats=inst).add_source(wrapper)
    root = mediator.query(Q1)
    root.d()                                   # navigation opens a span
    print(trace_to_json(inst.last_trace()))    # d -> operators -> SQL

    print(mediator.explain(Q1))                # EXPLAIN ANALYZE text
"""

from repro.obs.instrument import Instrument, TRACE_CAPACITY
from repro.obs.span import Span
from repro.obs.tokens import node_token, peek_token
from repro.obs.explain import (
    explain_analyze,
    explain_analyze_with_trace,
    render_explain,
)
from repro.obs.export import trace_to_dict, trace_to_json, traces_to_json

__all__ = [
    "Instrument",
    "Span",
    "TRACE_CAPACITY",
    "explain_analyze",
    "explain_analyze_with_trace",
    "node_token",
    "peek_token",
    "render_explain",
    "trace_to_dict",
    "trace_to_json",
    "traces_to_json",
]
