"""The diagnostics framework shared by the plan verifier and the linter.

A :class:`Diagnostic` is one finding: a stable code (``MIX-E001``,
``MIX-W003``, ...), a severity, a human message, and — when the finding
points into query text — a :class:`Span` with 1-based line/column
coordinates.  Codes are *stable*: tests, CI jobs, and editor tooling key
on them, so a code is never renamed or reused for a different invariant
(retired codes stay reserved).

The two renderers are the text form (one ``file:line:col: severity
CODE message`` line per finding, the familiar compiler shape) and a JSON
form for machine consumers (the CI lint job, editor integrations).
"""

from __future__ import annotations

import json
from typing import Iterable, List, Optional

from repro.xquery.ast import Span

#: Severity levels, ordered: an ``error`` invalidates a plan/query, a
#: ``warning`` flags code that runs but cannot mean what it says, an
#: ``info`` is advisory.
ERROR = "error"
WARNING = "warning"
INFO = "info"

_SEVERITY_ORDER = {ERROR: 0, WARNING: 1, INFO: 2}

#: The stable code registry: code -> (default severity, summary).
#: Codes MIX-E*** are plan-verifier invariants, MIX-W*** are linter
#: findings.  Never renumber; retired codes stay reserved.
CODES = {
    # -- plan verifier (schema dataflow over the 14 XMAS operators) ----
    "MIX-E001": (ERROR, "operator consumes a variable its input does not"
                        " bind"),
    "MIX-E002": (ERROR, "operator introduces a binding that already"
                        " exists (duplicate binding)"),
    "MIX-E003": (ERROR, "crElt/cat argument is not in scope"),
    "MIX-E004": (ERROR, "groupBy key is not part of the input schema"),
    "MIX-E005": (ERROR, "nestedSrc references a free context variable"),
    "MIX-E006": (ERROR, "tD exports a variable the plan does not bind"),
    "MIX-E007": (ERROR, "project/orderBy references a variable outside"
                        " the schema"),
    "MIX-E008": (ERROR, "rQ exports the same variable twice"),
    "MIX-E009": (ERROR, "plan references a source the catalog does not"
                        " know"),
    "MIX-E010": (ERROR, "join/semijoin condition references a variable"
                        " bound by neither input"),
    "MIX-E011": (ERROR, "block pipeline diverges from tuple-at-a-time"
                        " execution (dropped or corrupted binding)"),
    # -- rule certifier (repro.analysis.rulecheck) ---------------------
    "MIX-E012": (ERROR, "rewrite rule breaks its declared schema"
                        " contract (or diverges on answers)"),
    "MIX-E013": (ERROR, "rewrite rule set does not terminate (plan"
                        " fingerprint cycle or step divergence)"),
    # -- schema-aware XQuery linter ------------------------------------
    "MIX-W001": (WARNING, "dead path expression: the path can never"
                          " match the source schema"),
    "MIX-W002": (WARNING, "type-mismatched comparison can never be"
                          " true"),
    "MIX-W003": (WARNING, "unsatisfiable predicate (contradictory or"
                          " outside the analyzed value range)"),
    "MIX-W004": (WARNING, "FOR variable is bound but never used"),
    "MIX-W005": (WARNING, "query references an unknown document"),
    "MIX-W006": (WARNING, "comparison on a path that is not a leaf"
                          " (missing data()?)"),
    # -- rule certifier (repro.analysis.rulecheck) ---------------------
    "MIX-W007": (WARNING, "rewrite rule never fires on the certification"
                          " corpus (dead rule)"),
    "MIX-W008": (WARNING, "rewrite rule is shadowed by an earlier rule"
                          " at every site it matches"),
}


class Diagnostic:
    """One verifier/linter finding.

    Attributes:
        code: a stable registry code (``MIX-E001``...); unknown codes
            are rejected so typos cannot silently mint new ones.
        message: the specific human-readable finding.
        severity: ``error``/``warning``/``info``; defaults to the
            code's registered severity.
        span: source position, when the finding points into query text.
        stage: pipeline stage name for plan-verifier findings
            (``translate``, a rewrite rule name, ``sql-split``).
        source: logical name of what was analyzed (a query name, a
            file path) for multi-input reports.
    """

    __slots__ = ("code", "message", "severity", "span", "stage", "source")

    def __init__(self, code: str, message: str,
                 severity: Optional[str] = None,
                 span: Optional[Span] = None,
                 stage: Optional[str] = None,
                 source: Optional[str] = None) -> None:
        if code not in CODES:
            raise ValueError("unknown diagnostic code {!r}".format(code))
        if severity is None:
            severity = CODES[code][0]
        if severity not in _SEVERITY_ORDER:
            raise ValueError("unknown severity {!r}".format(severity))
        self.code = code
        self.message = message
        self.severity = severity
        self.span = span
        self.stage = stage
        self.source = source

    @property
    def is_error(self) -> bool:
        return self.severity == ERROR

    def to_dict(self) -> dict:
        out = {
            "code": self.code,
            "severity": self.severity,
            "message": self.message,
        }
        if self.span is not None:
            out["span"] = self.span.to_dict()
        if self.stage is not None:
            out["stage"] = self.stage
        if self.source is not None:
            out["source"] = self.source
        return out

    def render(self) -> str:
        """The one-line text form: ``[source:]line:col: sev CODE msg``."""
        prefix = ""
        if self.source is not None:
            prefix += "{}:".format(self.source)
        if self.span is not None:
            prefix += "{}:{}:".format(self.span.line, self.span.column)
        if prefix:
            prefix += " "
        suffix = ""
        if self.stage is not None:
            suffix = " [stage: {}]".format(self.stage)
        return "{}{} {}: {}{}".format(
            prefix, self.severity, self.code, self.message, suffix
        )

    def __repr__(self) -> str:
        return "Diagnostic({})".format(self.render())


def sort_diagnostics(diagnostics: Iterable[Diagnostic]) -> List[Diagnostic]:
    """Stable order: severity, then source position, then code."""

    def key(d: Diagnostic):
        span = d.span or Span(0, 0)
        return (_SEVERITY_ORDER[d.severity], span.line, span.column, d.code)

    return sorted(diagnostics, key=key)


def has_errors(diagnostics: Iterable[Diagnostic]) -> bool:
    return any(d.is_error for d in diagnostics)


def render_text(diagnostics: Iterable[Diagnostic]) -> str:
    """The multi-line text report (sorted; empty string when clean)."""
    return "\n".join(d.render() for d in sort_diagnostics(diagnostics))


def render_json(diagnostics: Iterable[Diagnostic]) -> str:
    """A stable JSON report: ``{"diagnostics": [...], "errors": n}``."""
    items = [d.to_dict() for d in sort_diagnostics(diagnostics)]
    return json.dumps(
        {
            "diagnostics": items,
            "errors": sum(1 for d in items if d["severity"] == ERROR),
            "warnings": sum(
                1 for d in items if d["severity"] == WARNING
            ),
        },
        indent=2,
        sort_keys=True,
    )
