"""Deliberately broken rewrite rules — the certifier's test dummies.

Each rule here trips exactly one class of ``check-rules`` finding, so
the CI lint job (and :mod:`tests.analysis.test_rulecheck`) can assert
that every diagnostic code actually fires with rule-name provenance:

================================  =================================
Rule                               Intended finding
================================  =================================
``defect-drop-binding``            MIX-E012 (schema contract): turns a
                                   ``getD`` into its input, silently
                                   dropping the output binding while
                                   declaring contract ``"preserve"``.
``defect-flip-flop``               MIX-E013 (single-rule cycle): swaps
                                   join operands, forever.
``defect-ping`` / ``defect-pong``  MIX-E013 (pair cycle): each
                                   terminates alone, together they
                                   bounce a select/orderBy pair.
``defect-never-fires``             MIX-W007: matches an operator shape
                                   no XMAS plan contains.
``defect-shadowed-empty``          MIX-W008: re-implements
                                   empty-propagation behind the real
                                   one, so it can never fire first.
``defect-drop-select``             MIX-E012 (differential): removes
                                   ``select`` filters — statically
                                   schema-transparent (contract
                                   ``"none"``), caught only by the
                                   answer-preservation workloads.
================================  =================================

``DEFECT_RULES`` is importable by the CLI as
``--rules=repro.analysis.defect_rules:DEFECT_RULES``.  Never register
these on a production mediator.
"""

from __future__ import annotations

from repro.algebra import operators as ops
from repro.rewriter.rule import Rule, RuleResult


class DropBindingRule(Rule):
    """Claims to preserve the schema, actually drops ``getD`` output."""

    name = "defect-drop-binding"
    schema_contract = "preserve"

    def apply(self, node, ctx):
        if not isinstance(node, ops.GetD):
            return None
        return RuleResult(node.input)


class FlipFlopRule(Rule):
    """Swaps join operands; a single-rule two-step cycle."""

    name = "defect-flip-flop"
    schema_contract = "preserve"

    def apply(self, node, ctx):
        if not isinstance(node, ops.Join):
            return None
        return RuleResult(
            ops.Join(node.conditions, node.right, node.left)
        )


class PingRule(Rule):
    """Hoists an ``orderBy`` above a ``project`` (terminates alone).

    ``project`` is deliberately the pivot: no Table-2 rule matches it,
    so the pair's sites are not shadowed and the cycle is purely the
    pair's own doing.
    """

    name = "defect-ping"
    schema_contract = "preserve"

    def apply(self, node, ctx):
        if not isinstance(node, ops.Project):
            return None
        below = node.input
        if not isinstance(below, ops.OrderBy):
            return None
        pushed = node.with_children((below.input,))
        return RuleResult(below.with_children((pushed,)))


class PongRule(Rule):
    """Hoists a ``project`` above an ``orderBy`` (terminates alone);
    cycles when paired with ``defect-ping``."""

    name = "defect-pong"
    schema_contract = "preserve"

    def apply(self, node, ctx):
        if not isinstance(node, ops.OrderBy):
            return None
        below = node.input
        if not isinstance(below, ops.Project):
            return None
        pushed = node.with_children((below.input,))
        return RuleResult(below.with_children((pushed,)))


class NeverFiresRule(Rule):
    """Matches a ``project`` directly over a ``project`` — a shape the
    translator never emits and no corpus plan contains."""

    name = "defect-never-fires"
    schema_contract = "preserve"

    def apply(self, node, ctx):
        if not isinstance(node, ops.Project):
            return None
        if not isinstance(node.input, ops.Project):
            return None
        return RuleResult(node.input)


class ShadowedEmptyRule(Rule):
    """Re-implements empty-propagation; registered after the real one
    it can never win a site."""

    name = "defect-shadowed-empty"
    schema_contract = "preserve"

    def apply(self, node, ctx):
        if isinstance(node, (ops.Empty, ops.TD)):
            return None
        children = node.children
        if not children:
            return None
        if isinstance(node, ops.SemiJoin):
            kept = node.left if node.keep == "left" else node.right
            probe = node.right if node.keep == "left" else node.left
            if isinstance(kept, ops.Empty) or isinstance(probe, ops.Empty):
                from repro.algebra.plan import defined_vars

                return RuleResult(ops.Empty(defined_vars(node) or ()))
            return None
        if any(isinstance(c, ops.Empty) for c in children):
            from repro.algebra.plan import defined_vars

            return RuleResult(ops.Empty(defined_vars(node) or ()))
        return None


class DropSelectRule(Rule):
    """Removes ``select`` filters.  The root schema is untouched, so no
    static check can reject it — only the differential workloads do."""

    name = "defect-drop-select"
    schema_contract = "none"

    def apply(self, node, ctx):
        if not isinstance(node, ops.Select):
            return None
        return RuleResult(node.input)


#: The seeded-defect corpus, in registration order.
DEFECT_RULES = (
    DropBindingRule(),
    FlipFlopRule(),
    PingRule(),
    PongRule(),
    NeverFiresRule(),
    ShadowedEmptyRule(),
    DropSelectRule(),
)
