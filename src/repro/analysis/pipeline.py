"""Per-stage pipeline verification: translate → rewrites → SQL split.

:func:`verify_query_pipeline` recompiles a query through a mediator's
own pipeline — outside the plan cache, leaving the mediator's state
untouched — and runs the plan verifier on the output of *every* stage:

* ``translate`` — the composed plan after translation and view
  expansion,
* one stage per Table-2 rewrite step, named after the rule that fired
  (so a rewrite that breaks schema flow fails fast with the offending
  rule named),
* ``sql-split`` — the executable plan after relational push-down
  (cost-based SQL refinements included when the mediator's cost
  optimizer is on).

The result is a :class:`PipelineReport`; ``report.ok`` / ``raise_if_failed``
give the pass/fail view and ``report.stage_count`` feeds the EXPLAIN
``verified: <n> stages`` footer.  ``Mediator(strict=True)`` performs the
same checks inline while compiling (see :meth:`repro.qdom.Mediator.prepare`).
"""

from __future__ import annotations

from typing import List, Optional

from repro.analysis.diagnostics import Diagnostic, has_errors
from repro.analysis.verifier import verify_plan
from repro.errors import PlanVerificationError
from repro.rewriter import push_to_sources


class StageReport:
    """One pipeline stage: its name, output plan, and findings.

    ``rule`` is the rewrite rule that produced this stage's plan (the
    provenance key of rewrite stages), ``None`` for the non-rewrite
    stages (``translate``, ``sql-split``, ``block-pipeline``).
    """

    __slots__ = ("name", "plan", "diagnostics", "rule")

    def __init__(self, name, plan, diagnostics, rule=None):
        self.name = name
        self.plan = plan
        self.diagnostics = list(diagnostics)
        self.rule = rule

    @property
    def ok(self) -> bool:
        return not has_errors(self.diagnostics)

    def __repr__(self):
        return "StageReport({}: {})".format(
            self.name, "ok" if self.ok else "FAILED"
        )


class PipelineReport:
    """The verifier's verdict over a whole compilation pipeline."""

    __slots__ = ("query", "stages")

    def __init__(self, query, stages):
        self.query = query
        self.stages = list(stages)

    @property
    def stage_count(self) -> int:
        return len(self.stages)

    @property
    def ok(self) -> bool:
        return all(stage.ok for stage in self.stages)

    @property
    def diagnostics(self) -> List[Diagnostic]:
        out = []
        for stage in self.stages:
            out.extend(stage.diagnostics)
        return out

    @property
    def failed_stage(self) -> Optional[str]:
        for stage in self.stages:
            if not stage.ok:
                return stage.name
        return None

    def raise_if_failed(self):
        """Raise :class:`PlanVerificationError` on the first bad stage."""
        for stage in self.stages:
            if not stage.ok:
                first = next(
                    d for d in stage.diagnostics if d.is_error
                )
                raise PlanVerificationError(
                    "plan verification failed after stage {!r}:"
                    " {} {}".format(stage.name, first.code, first.message),
                    diagnostics=stage.diagnostics,
                    stage=stage.name,
                    rule=stage.rule,
                )
        return self

    def __repr__(self):
        return "PipelineReport({} stages, {})".format(
            self.stage_count, "ok" if self.ok else "FAILED"
        )


def verify_query_pipeline(mediator, query_text, source=None,
                          block_check=False):
    """Compile ``query_text`` through ``mediator``'s pipeline, verifying
    after every stage; returns a :class:`PipelineReport`.

    The compilation happens outside the mediator's plan cache and does
    not consume a view id, so calling this never perturbs the mediator
    (EXPLAIN relies on that to keep its golden output stable).

    ``block_check=True`` appends a ``block-pipeline`` stage that runs
    the executable plan through both the tuple-at-a-time engine and the
    block-vectorized engine (fresh instruments, the mediator's sources)
    and compares the serialized answers — a divergence is the
    ``MIX-E011`` invariant.  It is opt-in because unlike the static
    stages it *evaluates* the plan, touching source caches and any
    fault schedules; EXPLAIN's footer therefore never includes it.
    """
    plan = mediator.translate(query_text, assign_root=False)
    plan = mediator._expand_views(plan)
    catalog = mediator.catalog
    stages = [
        StageReport(
            "translate",
            plan,
            verify_plan(
                plan, catalog=catalog, stage="translate", source=source
            ),
        )
    ]
    if mediator.optimize:
        trace = []
        plan = mediator._rewriter.rewrite(plan, trace=trace)
        for step in trace:
            stage_name = "rewrite[{}]".format(step.rule_name)
            stages.append(
                StageReport(
                    stage_name,
                    step.plan,
                    verify_plan(
                        step.plan, catalog=catalog, stage=stage_name,
                        source=source,
                    ),
                    rule=step.rule_name,
                )
            )
    if mediator.push_sql:
        plan = push_to_sources(
            plan, catalog, cost=mediator.cost_optimizer
        )
        stages.append(
            StageReport(
                "sql-split",
                plan,
                verify_plan(
                    plan, catalog=catalog, stage="sql-split",
                    source=source,
                ),
            )
        )
    if block_check:
        stages.append(_verify_block_pipeline(mediator, plan, source))
    return PipelineReport(query_text, stages)


def _verify_block_pipeline(mediator, plan, source):
    """The runtime block-vs-tuple differential probe (``MIX-E011``).

    Evaluates the executable plan twice — once tuple-at-a-time
    (``block_size=1``) and once with the mediator's block size (or the
    default when the mediator itself runs in tuple mode) — and demands
    byte-identical serialized answers.  Exceptions must match too: a
    block pipeline that fails where tuple mode succeeds (or vice versa)
    is just as diverged as one that drops a binding.
    """
    from repro.engine.block import DEFAULT_BLOCK_SIZE
    from repro.engine.lazy import LazyEngine
    from repro.obs.instrument import Instrument
    from repro.xmltree import serialize

    block_size = getattr(mediator, "block_size", 1)
    if block_size <= 1:
        block_size = DEFAULT_BLOCK_SIZE
    policy = getattr(mediator, "on_source_error", "raise")
    stage_name = "block-pipeline"

    def run(size):
        engine = LazyEngine(
            mediator.catalog, stats=Instrument(),
            on_source_error=policy, block_size=size,
        )
        try:
            root = engine.evaluate_tree(plan)
            return serialize(root.copy_subtree()), None
        except Exception as exc:  # noqa: BLE001 — compared, not hidden
            return None, "{}: {}".format(type(exc).__name__, exc)

    tuple_answer, tuple_error = run(1)
    block_answer, block_error = run(block_size)
    diagnostics = []
    if (tuple_answer, tuple_error) != (block_answer, block_error):
        if tuple_error != block_error:
            detail = (
                "tuple mode {} but block_size={} {}".format(
                    "raised " + tuple_error if tuple_error
                    else "succeeded",
                    block_size,
                    "raised " + block_error if block_error
                    else "succeeded",
                )
            )
        else:
            detail = (
                "serialized answers differ between block_size=1 and"
                " block_size={} ({} vs {} bytes)".format(
                    block_size, len(tuple_answer), len(block_answer)
                )
            )
        diagnostics.append(Diagnostic(
            "MIX-E011", detail, stage=stage_name, source=source,
        ))
    return StageReport(stage_name, plan, diagnostics)
