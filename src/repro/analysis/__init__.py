"""Static analysis over XMAS plans and XQuery text (``repro.analysis``).

Three passes:

* the **plan verifier** (:func:`verify_plan`, :func:`assert_plan_verifies`)
  infers the binding-list schema flowing through all 14 XMAS operators
  and checks the dataflow invariants of Section 5;
* the **pipeline verifier** (:func:`verify_query_pipeline`) re-runs the
  plan verifier after every compilation stage — translate, each Table-2
  rewrite step, SQL split — naming the stage that broke schema flow;
* the **XQuery linter** (:func:`lint_query`) checks query text against
  the schemas the relational wrapper catalog exports: dead paths,
  unsatisfiable predicates, unused variables, each finding carrying
  source line/column spans.

All passes report through the shared :class:`Diagnostic` framework with
stable codes (``MIX-E001``..., ``MIX-W001``...), rendered as compiler-style
text or JSON.  The CLI surfaces them as ``python -m repro lint`` and
``python -m repro check-plan``; ``Mediator(strict=True)`` runs the
pipeline verifier on every compiled plan.
"""

from repro.analysis.diagnostics import (
    CODES,
    Diagnostic,
    ERROR,
    INFO,
    Span,
    WARNING,
    has_errors,
    render_json,
    render_text,
    sort_diagnostics,
)
from repro.analysis.linter import (
    DocumentSchema,
    catalog_schemas,
    lint_query,
)
from repro.analysis.pipeline import (
    PipelineReport,
    StageReport,
    verify_query_pipeline,
)
from repro.analysis.rulecheck import (
    RuleCheckReport,
    RuleReport,
    certify_rules,
    generate_corpus,
)
from repro.analysis.verifier import (
    assert_plan_verifies,
    infer_schema,
    verify_plan,
)

__all__ = [
    "CODES",
    "Diagnostic",
    "DocumentSchema",
    "ERROR",
    "INFO",
    "PipelineReport",
    "RuleCheckReport",
    "RuleReport",
    "Span",
    "StageReport",
    "WARNING",
    "assert_plan_verifies",
    "catalog_schemas",
    "certify_rules",
    "generate_corpus",
    "has_errors",
    "infer_schema",
    "lint_query",
    "render_json",
    "render_text",
    "sort_diagnostics",
    "verify_plan",
    "verify_query_pipeline",
]
