"""Static certification of rewrite rules (``check-rules``).

The PR-5 plan verifier checks *plans* after the fact; this pass
certifies the *rules* themselves, before they ever touch a user query.
Every registered rule is driven over a generated corpus of plan shapes
covering all 14 XMAS operators (hand-built minimal firing sites for
each Table-2 rule, plus every intermediate plan of the paper's
Fig. 13-21 worked example), and four analyses report through the shared
diagnostics framework:

``MIX-E012`` — schema contract
    At every (plan, node) site where the rule matches, the rule is
    applied and the root binding-list schema of the result (existing
    :func:`repro.analysis.infer_schema` inference) is compared against
    the rule's declared ``schema_contract`` (modulo the rename it
    returned); the rewritten plan must also stay verification-clean.
    Rules declaring contract ``"none"``, and firings at sites whose
    schema is statically unknown, fall through to the differential
    check below.

``MIX-E013`` — termination / confluence
    The rule alone, every pair it forms with another registered rule,
    and the full set are each run to a fixpoint over the corpus; the
    engine's alpha-invariant plan-fingerprint cycle detector
    (:func:`repro.algebra.plan.plan_fingerprint`) converts an infinite
    loop into a diagnostic naming the cycling rules.

``MIX-W007`` / ``MIX-W008`` — liveness / shadowing
    A rule that matches nowhere on the corpus is dead; a rule whose
    every match site is also matched by an earlier (higher-priority)
    rule can never fire first and is shadowed.

**Differential answer preservation** — any rule not provably
schema-safe is run on miniature customers/orders workloads
(:mod:`repro.workloads.customers`): the same queries are compiled with
and without the rule and the serialized answers must be identical; a
divergence is reported as ``MIX-E012``.

Surfaces: ``python -m repro check-rules`` (``--json``,
``--rules=module:attr``), and ``Mediator(extension_rules=...,
strict=True)``, which refuses extension rules that fail certification
(:class:`repro.errors.RuleCertificationError`).

The corpus is always generated with the library's own
:data:`~repro.rewriter.rules.DEFAULT_RULES` (the canon), never with the
rule set under test, so a broken candidate rule cannot corrupt the
yardstick it is measured against.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

from repro.algebra import operators as ops
from repro.algebra.conditions import Condition
from repro.algebra.plan import (
    iter_operators,
    rename_vars,
    replace_operator,
)
from repro.analysis.diagnostics import Diagnostic, sort_diagnostics
from repro.analysis.verifier import infer_schema, verify_plan
from repro.errors import MixError, RewriteError
from repro.rewriter.engine import Rewriter
from repro.rewriter.context import RewriteContext
from repro.rewriter.rule import (
    declared_contract,
    is_set_semantics,
    rule_name,
    validate_rule,
)
from repro.rewriter.rules import DEFAULT_RULES
from repro.rewriter.sql_split import push_to_sources
from repro.xmltree.paths import Path

#: Step bound for the certification fixpoint runs — far above anything a
#: sane rule set needs on the ≤ 25-node corpus plans, so hitting it
#: means divergence, not a tight budget.
MAX_TERMINATION_STEPS = 300

#: Max diagnostics kept per (rule, code) pair; beyond it only the count
#: grows (one broken rule should not drown the report).
MAX_DIAGNOSTICS_PER_CODE = 3

#: Fig. 3 view (Q1) phrased against the wrapper documents, and Fig. 12
#: composed against it — the worked example whose rewrite trace seeds
#: the corpus, and (with the threshold below) the differential queries.
VIEW_QUERY = """
FOR $C IN source(root1)/customer
    $O IN document(root2)/order
WHERE $C/id/data() = $O/cid/data()
RETURN <CustRec> $C <OrderInfo> $O </OrderInfo> {$O} </CustRec> {$C}
"""

COMPOSE_QUERY = """
FOR $R IN document(rootv)/CustRec
    $S IN $R/OrderInfo
WHERE $S/order/value/data() > 150
RETURN $R
"""

#: Stand-alone differential queries (run next to the composed pair).
DIFFERENTIAL_QUERIES = (
    """
    FOR $O IN document(root2)/order
    WHERE $O/value/data() > 150
    RETURN <Big> $O </Big>
    """,
    """
    FOR $C IN document(root1)/customer
        $O IN document(root2)/order
    WHERE $C/id/data() = $O/cid/data()
    RETURN <Rec> $C <Ord> $O </Ord> {$O} </Rec> {$C}
    """,
)


class CorpusPlan:
    """One named certification plan."""

    __slots__ = ("name", "plan")

    def __init__(self, name, plan):
        self.name = name
        self.plan = plan


def _label_path(*labels):
    return Path.of(*labels)


def _crelt_fixture():
    """``crElt`` building CustRec elements from a wrapped list — the
    target shape of Table-2 rows 1-4."""
    inner = ops.GetD(
        "$K", _label_path("customer"), "$W",
        ops.MkSrc("root1", "$K"),
    )
    return ops.CrElt("CustRec", "f", ("$W",), "$W", False, "$V", inner)


def _join_fixture():
    left = ops.GetD("$K", _label_path("a"), "$A", ops.MkSrc("root1", "$K"))
    right = ops.GetD("$L", _label_path("b"), "$B", ops.MkSrc("root2", "$L"))
    return ops.Join((Condition.var_var("$A", "=", "$B"),), left, right)


def _hand_shapes():
    """Minimal verification-clean firing sites, one per Table-2 rule
    family that the worked example does not already exercise."""
    shapes = []

    # empty-propagation: a getD over a provably empty input.
    shapes.append(CorpusPlan(
        "hand: getD over Empty",
        ops.GetD("$X", _label_path("a"), "$Y", ops.Empty(("$X",))),
    ))

    # rule 11: mksrc of a composed view over the view body's tD.
    body = ops.GetD(
        "$K", _label_path("customer"), "$1", ops.MkSrc("root1", "$K")
    )
    shapes.append(CorpusPlan(
        "hand: mksrc over tD (rule 11)",
        ops.MkSrc("rootv", "$X", ops.TD("$1", body, root_oid="rootv")),
    ))

    # rules 1-4: getD paths against the crElt fixture.
    shapes.append(CorpusPlan(
        "hand: getD through crElt (row 1)",
        ops.GetD("$V", _label_path("CustRec", "name"), "$S",
                 _crelt_fixture()),
    ))
    shapes.append(CorpusPlan(
        "hand: getD identifies crElt (row 2)",
        ops.GetD("$V", _label_path("CustRec"), "$R", _crelt_fixture()),
    ))
    shapes.append(CorpusPlan(
        "hand: getD misses crElt label (row 4)",
        ops.GetD("$V", _label_path("Mismatch", "name"), "$S",
                 _crelt_fixture()),
    ))

    # rules 5-8: getD over cat with statically resolvable operands.
    cat_input = ops.GetD(
        "$K", _label_path("b"), "$B",
        ops.GetD("$K", _label_path("a"), "$A", ops.MkSrc("root1", "$K")),
    )
    cat = ops.Cat("$A", True, "$B", True, "$Z", cat_input)
    shapes.append(CorpusPlan(
        "hand: getD through cat (rows 5-8)",
        ops.GetD("$Z", _label_path("list", "a", "val"), "$G", cat),
    ))

    # select-pushdown over a join + join→semijoin (dead right side).
    shapes.append(CorpusPlan(
        "hand: select over join, dead side",
        ops.Project(
            ("$A",),
            ops.Select(Condition.var_const("$A", ">", 5), _join_fixture()),
        ),
    ))

    # dead-operator-elimination: crElt whose output feeds nothing.
    dead_input = ops.GetD(
        "$K", _label_path("a"), "$A", ops.MkSrc("root1", "$K")
    )
    shapes.append(CorpusPlan(
        "hand: dead crElt",
        ops.Project(
            ("$A",),
            ops.CrElt("E", "f", ("$A",), "$A", True, "$E", dead_input),
        ),
    ))

    # A select no default rule can move (the getD below defines the
    # condition variable) — a stable site for rules that match bare
    # selects without being shadowed by select-pushdown.
    shapes.append(CorpusPlan(
        "hand: select pinned above getD",
        ops.Select(
            Condition.var_const("$A", ">", 1),
            ops.GetD("$K", _label_path("a"), "$A",
                     ops.MkSrc("root1", "$K")),
        ),
    ))

    # A project directly over an orderBy — again a shape no default
    # rule touches (the certifier's pair-cycle tests pivot on it).
    shapes.append(CorpusPlan(
        "hand: project over orderBy",
        ops.Project(
            ("$A",),
            ops.OrderBy(
                ("$A",),
                ops.GetD("$K", _label_path("a"), "$A",
                         ops.MkSrc("root1", "$K")),
            ),
        ),
    ))

    # Full-operator coverage: rQ / semijoin / select / gBy / apply /
    # nestedSrc / project / orderBy in one clean plan.
    rq_c = ops.RelQuery(
        "s1", "SELECT id, name FROM customer ORDER BY id",
        (ops.RQVar("$C", "customer", ((0, "id"), (1, "name")), (0,)),),
        order_vars=("$C",),
    )
    rq_o = ops.RelQuery(
        "s1", "SELECT orid, cid FROM orders",
        (ops.RQVar("$O", "order", ((0, "orid"), (1, "cid")), (0,)),),
    )
    semi = ops.SemiJoin(
        (Condition.var_var("$C", "=", "$O"),), rq_c, rq_o, keep="left"
    )
    sel = ops.Select(Condition.var_const("$C", "!=", "zzz"), semi)
    gby = ops.GroupBy(("$C",), "$P", sel)
    nested = ops.TD("$C", ops.NestedSrc("$P"))
    applied = ops.Apply(nested, "$P", "$R2", gby)
    shapes.append(CorpusPlan(
        "hand: full operator coverage",
        ops.OrderBy(("$C",), ops.Project(("$C", "$R2"), applied)),
    ))
    return shapes


def _worked_example_plans():
    """The naive Fig.-13 composition plan and every intermediate plan of
    its DEFAULT_RULES rewrite (the Fig. 13-21 walk)."""
    from repro.algebra.translator import Translator
    from repro.composer.compose import compose_at_root
    from repro.xquery.parser import parse_xquery

    view = Translator().translate(
        parse_xquery(VIEW_QUERY), root_oid="rootv"
    )
    query = Translator().translate(parse_xquery(COMPOSE_QUERY))
    naive = compose_at_root(view, query, "rootv")
    trace: List[Any] = []
    Rewriter(rules=DEFAULT_RULES).rewrite(naive, trace=trace)
    plans = [CorpusPlan("worked example: naive composition", naive)]
    for i, step in enumerate(trace, 1):
        plans.append(CorpusPlan(
            "worked example: after step {} ({})".format(i, step.rule_name),
            step.plan,
        ))
    return plans


_CORPUS: Optional[List[CorpusPlan]] = None


def generate_corpus():
    """The certification corpus (cached; treat the plans as read-only)."""
    global _CORPUS
    if _CORPUS is None:
        _CORPUS = _hand_shapes() + _worked_example_plans()
    return list(_CORPUS)


class RuleReport:
    """Certification verdict for one rule."""

    __slots__ = (
        "name", "contract", "set_semantics", "sites", "unknown_sites",
        "differential_fired", "diagnostics",
    )

    def __init__(self, name, contract, set_semantics):
        self.name = name
        self.contract = contract
        self.set_semantics = set_semantics
        #: (plan index, node index) sites where the rule matches.
        self.sites = 0
        #: matching sites whose root schema is statically unknown.
        self.unknown_sites = 0
        #: whether the differential check saw the rule fire (``None``
        #: when the differential pass did not run for this rule).
        self.differential_fired: Optional[bool] = None
        self.diagnostics: List[Diagnostic] = []

    @property
    def certified(self):
        return not any(d.is_error for d in self.diagnostics)

    @property
    def warnings(self):
        return [d for d in self.diagnostics if not d.is_error]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "contract": self.contract,
            "set_semantics": self.set_semantics,
            "sites": self.sites,
            "unknown_sites": self.unknown_sites,
            "differential_fired": self.differential_fired,
            "certified": self.certified,
            "diagnostics": [
                d.to_dict() for d in sort_diagnostics(self.diagnostics)
            ],
        }


class RuleCheckReport:
    """The full certification report over one rule set."""

    def __init__(self, rules, corpus_size):
        self.rules: List[RuleReport] = list(rules)
        self.corpus_size = corpus_size

    @property
    def diagnostics(self):
        out = []
        for r in self.rules:
            out.extend(r.diagnostics)
        return sort_diagnostics(out)

    @property
    def ok(self):
        return all(r.certified for r in self.rules)

    @property
    def error_count(self):
        return sum(1 for d in self.diagnostics if d.is_error)

    @property
    def warning_count(self):
        return sum(1 for d in self.diagnostics if not d.is_error)

    def rule(self, name):
        """The :class:`RuleReport` for ``name`` (raises ``KeyError``)."""
        for r in self.rules:
            if r.name == name:
                return r
        raise KeyError(name)

    def render_text(self):
        lines = [
            "rule-certification: {} rules over {} corpus plans".format(
                len(self.rules), self.corpus_size
            )
        ]
        for r in self.rules:
            verdict = "ok  " if r.certified else "FAIL"
            lines.append(
                "  [{}] {:<34} contract={:<8} sites={}".format(
                    verdict, r.name, r.contract, r.sites
                )
            )
            for d in sort_diagnostics(r.diagnostics):
                lines.append("         " + d.render())
        lines.append(
            "summary: {} certified, {} failed, {} errors, "
            "{} warnings".format(
                sum(1 for r in self.rules if r.certified),
                sum(1 for r in self.rules if not r.certified),
                self.error_count,
                self.warning_count,
            )
        )
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "corpus_plans": self.corpus_size,
            "rules": [r.to_dict() for r in self.rules],
            "errors": self.error_count,
            "warnings": self.warning_count,
            "ok": self.ok,
        }

    def render_json(self):
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)


def certify_rules(rules=None, extension_rules=(), differential=True,
                  focus=None, corpus=None):
    """Certify a rule set; returns a :class:`RuleCheckReport`.

    Args:
        rules: the base priority-ordered rule set (default: the full
            Table-2 :data:`DEFAULT_RULES`).
        extension_rules: extra rules appended after the base set (the
            ``Mediator(extension_rules=...)`` position).
        differential: run the answer-preservation workload check for
            rules that are not provably schema-safe (contract
            ``"none"``, or firings at statically-unknown-schema sites).
        focus: iterable of rule *names* to certify (others still
            participate as shadowing candidates and termination
            partners); default: every rule.
        corpus: override the generated corpus (tests).

    Raises:
        RewriteError: a rule fails the registration contract itself
            (no name, unknown contract, duplicate name).
    """
    base = tuple(DEFAULT_RULES if rules is None else rules)
    all_rules = base + tuple(extension_rules)
    for r in all_rules:
        validate_rule(r)
    names = [rule_name(r) for r in all_rules]
    for i, n in enumerate(names):
        if n in names[:i]:
            raise RewriteError(
                "duplicate rule name {!r}: already registered".format(n)
            )
    focus_names = set(names if focus is None else focus)
    plans = generate_corpus() if corpus is None else list(corpus)

    reports = {
        n: RuleReport(n, declared_contract(r), is_set_semantics(r))
        for n, r in zip(names, all_rules)
    }
    counts: Dict[tuple, int] = {}

    def emit(name, code, message, stage):
        report = reports[name]
        key = (name, code, stage)
        counts[key] = counts.get(key, 0) + 1
        if counts[key] <= MAX_DIAGNOSTICS_PER_CODE:
            report.diagnostics.append(
                Diagnostic(code, message, stage=stage, source=name)
            )
        elif counts[key] == MAX_DIAGNOSTICS_PER_CODE + 1:
            report.diagnostics.append(Diagnostic(
                code,
                "further {} findings for rule {!r} suppressed".format(
                    code, name
                ),
                stage=stage, source=name,
            ))

    # -- phase 1: match sweep + per-site schema-contract check ---------
    sites: Dict[str, set] = {n: set() for n in names}
    for pi, entry in enumerate(plans):
        ctx = RewriteContext(entry.plan)
        nodes = list(iter_operators(entry.plan))
        for ni, node in enumerate(nodes):
            for name, rule in zip(names, all_rules):
                focused = name in focus_names
                try:
                    result = rule.apply(node, ctx)
                except Exception as exc:  # noqa: BLE001 - third-party rules
                    if focused:
                        emit(
                            name, "MIX-E012",
                            "rule raised {}: {} at {!r} node {}".format(
                                type(exc).__name__, exc, entry.name, ni
                            ),
                            "schema",
                        )
                    continue
                if result is None:
                    continue
                sites[name].add((pi, ni))
                if focused:
                    _check_site(
                        reports[name], emit, entry, node, result
                    )

    for name in names:
        reports[name].sites = len(sites[name])

    # -- phase 2: liveness (W007) and shadowing (W008) -----------------
    for j, name in enumerate(names):
        if name not in focus_names:
            continue
        if not sites[name]:
            emit(
                name, "MIX-W007",
                "rule {!r} never fires on the {}-plan certification"
                " corpus".format(name, len(plans)),
                "liveness",
            )
            continue
        for i in range(j):
            if sites[name] <= sites[names[i]]:
                emit(
                    name, "MIX-W008",
                    "rule {!r} is shadowed by earlier rule {!r} at all"
                    " {} of its match sites".format(
                        name, names[i], len(sites[name])
                    ),
                    "shadow",
                )
                break

    # -- phase 3: termination (alone, in pairs, full set) --------------
    def run_termination(subset, label):
        subset_names = [rule_name(r) for r in subset]
        # Only plans where some subset rule matches at all can loop.
        relevant = [
            p for i, p in enumerate(plans)
            if any(site[0] == i for n in subset_names for site in sites[n])
        ]
        engine = Rewriter(rules=subset, max_steps=MAX_TERMINATION_STEPS)
        for p in relevant:
            try:
                engine.rewrite(p.plan)
                continue
            except RewriteError as exc:
                failure = exc
            except Exception:  # noqa: BLE001 - third-party rules
                # A rule that raises mid-fixpoint was already reported
                # as MIX-E012 by the phase-1 sweep; don't let it abort
                # the termination pass for the rest of the set.
                continue
            involved = []
            for step in failure.steps:
                if step.rule_name not in involved:
                    involved.append(step.rule_name)
            targets = [
                n for n in involved
                if n in focus_names and n in subset_names
            ] or [n for n in subset_names if n in focus_names]
            for n in targets:
                emit(
                    n, "MIX-E013",
                    "{} under rule set [{}] on {!r}: {}".format(
                        failure.kind or "non-termination",
                        ", ".join(subset_names), p.name, failure
                    ),
                    label,
                )
            return False
        return True

    for name, rule in zip(names, all_rules):
        if name in focus_names:
            run_termination((rule,), "termination")
    pair_seen = set()
    for j, (name, rule) in enumerate(zip(names, all_rules)):
        if name not in focus_names:
            continue
        for i, other in enumerate(all_rules):
            if i == j:
                continue
            key = frozenset((i, j))
            if key in pair_seen:
                continue
            pair_seen.add(key)
            pair = (all_rules[min(i, j)], all_rules[max(i, j)])
            run_termination(pair, "termination")
    run_termination(all_rules, "termination")

    # -- phase 4: differential answer preservation ---------------------
    if differential:
        for name, rule in zip(names, all_rules):
            if name not in focus_names:
                continue
            report = reports[name]
            if not report.certified:
                continue  # already broken; don't pile on
            if (declared_contract(rule) != "none"
                    and report.unknown_sites == 0):
                continue
            _differential_check(name, rule, base, all_rules, emit, reports)

    return RuleCheckReport(
        [reports[n] for n in names], len(plans)
    )


def _check_site(report, emit, entry, node, result):
    """Apply one match result and check the declared schema contract."""
    name = report.name
    try:
        new_plan = replace_operator(entry.plan, node, result.replacement)
        if result.rename:
            new_plan = rename_vars(new_plan, result.rename)
    except Exception as exc:  # noqa: BLE001 - third-party rules
        emit(
            name, "MIX-E012",
            "replacement failed ({}: {}) at {!r}".format(
                type(exc).__name__, exc, entry.name
            ),
            "schema",
        )
        return
    before = infer_schema(entry.plan)
    after = infer_schema(new_plan)
    if before is None or after is None:
        report.unknown_sites += 1
        return
    expected = frozenset(result.rename.get(v, v) for v in before)
    contract = report.contract
    ok = True
    if contract == "preserve":
        ok = after == expected
    elif contract == "widen":
        ok = after >= expected
    elif contract == "narrow":
        ok = after <= expected
    else:  # "none": no static promise — differential covers it.
        report.unknown_sites += 1
        return
    if not ok:
        emit(
            name, "MIX-E012",
            "declared contract {!r} broken at {!r}: schema {} -> {}"
            " (expected {} {})".format(
                contract, entry.name, sorted(expected), sorted(after),
                {"preserve": "==", "widen": ">=", "narrow": "<="}[
                    contract
                ],
                sorted(expected),
            ),
            "schema",
        )
        return
    new_errors = sum(1 for d in verify_plan(new_plan) if d.is_error)
    base_errors = sum(1 for d in verify_plan(entry.plan) if d.is_error)
    if new_errors > base_errors:
        first = next(d for d in verify_plan(new_plan) if d.is_error)
        emit(
            name, "MIX-E012",
            "rewritten plan fails verification at {!r}: {} {}".format(
                entry.name, first.code, first.message
            ),
            "schema",
        )


_DIFFERENTIAL_CATALOG = None
_DIFFERENTIAL_PLANS = None


def _differential_setup():
    """The miniature workload catalog + query plans (built once)."""
    global _DIFFERENTIAL_CATALOG, _DIFFERENTIAL_PLANS
    if _DIFFERENTIAL_CATALOG is None:
        from repro.algebra.translator import Translator
        from repro.composer.compose import compose_at_root
        from repro.sources import SourceCatalog
        from repro.workloads.customers import build_customers_orders
        from repro.xquery.parser import parse_xquery

        built = build_customers_orders(
            n_customers=4, orders_per_customer=2,
            value_mode="ladder", value_step=100,
        )
        catalog = SourceCatalog()
        catalog.register(built.wrapper)
        plans = []
        for text in DIFFERENTIAL_QUERIES:
            plans.append(
                Translator().translate(parse_xquery(text))
            )
        view = Translator().translate(
            parse_xquery(VIEW_QUERY), root_oid="rootv"
        )
        query = Translator().translate(parse_xquery(COMPOSE_QUERY))
        plans.append(compose_at_root(view, query, "rootv"))
        _DIFFERENTIAL_CATALOG = catalog
        _DIFFERENTIAL_PLANS = plans
    return _DIFFERENTIAL_CATALOG, _DIFFERENTIAL_PLANS


def _differential_answers(ruleset, catalog, plans):
    """Serialized answers of the workload queries under ``ruleset``.

    Returns ``(answers, fired_rule_names)``.
    """
    from repro.engine.eager import EagerEngine
    from repro.xmltree.serializer import serialize

    answers = []
    fired = set()
    engine = Rewriter(rules=ruleset, max_steps=MAX_TERMINATION_STEPS)
    for plan in plans:
        rewritten = engine.rewrite(plan)
        fired.update(engine.last_rule_names)
        exec_plan = push_to_sources(rewritten, catalog)
        root = EagerEngine(catalog).evaluate_tree(exec_plan)
        answers.append(serialize(root))
    return answers, fired


def _differential_check(name, rule, base, all_rules, emit, reports):
    """Compile+run the workloads with and without ``rule``; answers must
    be byte-identical."""
    catalog, plans = _differential_setup()
    with_rule = tuple(
        r for r in all_rules
        if rule_name(r) == name or rule_name(r) in {
            rule_name(b) for b in base
        }
    )
    without_rule = tuple(r for r in with_rule if rule_name(r) != name)
    try:
        baseline, __ = _differential_answers(without_rule, catalog, plans)
        candidate, fired = _differential_answers(
            with_rule, catalog, plans
        )
    except RewriteError:
        # Non-termination is phase 3's finding; nothing to add here.
        return
    except MixError as exc:
        emit(
            name, "MIX-E012",
            "rule {!r} broke the differential workload pipeline:"
            " {}".format(name, exc),
            "differential",
        )
        return
    reports[name].differential_fired = name in fired
    for i, (a, b) in enumerate(zip(baseline, candidate)):
        if a != b:
            emit(
                name, "MIX-E012",
                "answers diverge on differential workload query {}"
                " when rule {!r} is enabled".format(i, name),
                "differential",
            )
            return
