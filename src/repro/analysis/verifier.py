"""The static plan verifier: binding-schema dataflow over XMAS plans.

Every XMAS operator maps a well-defined input binding schema (the set of
variables bound in each tuple) to an output schema — paper Section 5,
Fig. 5.  The verifier re-derives that schema bottom-up through all 14
operators and checks the dataflow invariants along the way:

* every variable an operator consumes is produced upstream (MIX-E001),
* no operator (re)introduces an existing binding, and join inputs are
  disjoint (MIX-E002),
* ``crElt``/``cat`` arguments are in scope (MIX-E003),
* ``groupBy`` keys are a subset of the input schema (MIX-E004),
* nested plans reference no free context variables: a ``nestedSrc``
  leaf must name the enclosing ``apply``'s input variable, which is how
  decontextualized plans (Section 7) are proven context-free (MIX-E005),
* ``tD`` exports a bound variable (MIX-E006),
* ``project``/``orderBy``/``rQ.order_vars`` stay inside the schema
  (MIX-E007),
* ``rQ`` export maps are duplicate-free (MIX-E008),
* with a catalog, ``mksrc``/``rQ`` leaves resolve (MIX-E009),
* join/semijoin conditions only mention variables of the two inputs
  (MIX-E010).

Schemas are ``frozenset`` of variable names, or ``None`` when statically
unknown (a ``nestedSrc`` whose partition schema cannot be traced);
``None`` suppresses membership checks but still propagates, so partial
knowledge never produces false positives.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.algebra import operators as ops
from repro.analysis.diagnostics import Diagnostic
from repro.errors import PlanVerificationError


def verify_plan(plan, catalog=None, stage=None, source=None):
    """Verify one plan; returns the list of :class:`Diagnostic` findings.

    ``catalog`` (a :class:`repro.sources.SourceCatalog`) enables the
    source-resolution check (MIX-E009); without it, plans with virtual
    roots — pre-composition views, the query root — verify cleanly.
    ``stage``/``source`` are attached to every finding for reporting.
    """
    walker = _SchemaWalker(catalog=catalog, stage=stage, source=source)
    walker.infer(plan, env={})
    return walker.diagnostics


def assert_plan_verifies(plan, catalog=None, stage=None, source=None,
                         rule=None):
    """Like :func:`verify_plan` but raises on errors.

    Raises :class:`repro.errors.PlanVerificationError` carrying the
    diagnostics when any finding has severity ``error``; returns the
    (possibly empty) diagnostics list otherwise.  ``rule`` names the
    rewrite rule whose output is being checked (rewrite stages only);
    it travels on the raised error for provenance.
    """
    diagnostics = verify_plan(
        plan, catalog=catalog, stage=stage, source=source
    )
    errors = [d for d in diagnostics if d.is_error]
    if errors:
        first = errors[0]
        where = " after stage {!r}".format(stage) if stage else ""
        blame = " (rule {!r})".format(rule) if rule else ""
        raise PlanVerificationError(
            "plan verification failed{}{}: {} {}".format(
                where, blame, first.code, first.message
            ),
            diagnostics=diagnostics,
            stage=stage,
            rule=rule,
        )
    return diagnostics


def infer_schema(plan):
    """The plan's output binding schema: a ``frozenset`` of variables,
    or ``None`` when statically unknown.  Diagnostics are discarded —
    use :func:`verify_plan` to collect them."""
    return _SchemaWalker().infer(plan, env={})


class _SchemaWalker:
    """Bottom-up schema inference with a diagnostics sink.

    ``env`` maps a ``nestedSrc`` variable to the partition schema of the
    enclosing ``apply`` (or ``None`` when that schema is unknown); it is
    threaded down into nested plans only, giving nested scopes exactly
    the visibility the paper's ``apply`` semantics grants them.
    """

    def __init__(self, catalog=None, stage=None, source=None):
        self.catalog = catalog
        self.stage = stage
        self.source = source
        self.diagnostics: List[Diagnostic] = []

    # -- reporting ---------------------------------------------------------

    def report(self, code, message):
        self.diagnostics.append(
            Diagnostic(
                code, message, stage=self.stage, source=self.source
            )
        )

    def _check_consumed(self, node, needed, schema, code="MIX-E001"):
        """Report each consumed variable missing from ``schema``."""
        if schema is None:
            return
        missing = sorted(set(needed) - schema)
        if missing:
            self.report(
                code,
                "{} consumes {} not bound by its input (schema: {})".format(
                    node.opname,
                    ", ".join(missing),
                    _fmt(schema),
                ),
            )

    def _check_fresh(self, node, out_var, schema):
        """Report when ``out_var`` would shadow an existing binding."""
        if schema is not None and out_var in schema:
            self.report(
                "MIX-E002",
                "{} introduces {} which its input already binds".format(
                    node.opname, out_var
                ),
            )

    # -- inference ---------------------------------------------------------

    def infer(self, plan, env) -> Optional[frozenset]:
        method = self._DISPATCH.get(type(plan))
        if method is not None:
            return method(self, plan, env)
        # Unknown operator subclass: fall back to the generic contract.
        schema = None
        if plan.children:
            schema = self.infer(plan.children[0], env)
        self._check_consumed(plan, plan.used_vars(), schema)
        if schema is None:
            return None
        return schema | plan.local_defined_vars()

    def _infer_mksrc(self, plan: ops.MkSrc, env):
        if plan.input is not None:
            # Naive-composition configuration (Section 6): the source
            # operator reads the tree built by a tD-rooted view plan, so
            # the source id is virtual and never in the catalog.
            self.infer(plan.input, env)
        elif self.catalog is not None and not self.catalog.has_document(
            plan.source
        ):
            self.report(
                "MIX-E009",
                "mksrc references unknown document {!r} (known: {})".format(
                    plan.source,
                    ", ".join(self.catalog.document_ids()) or "none",
                ),
            )
        return frozenset([plan.var])

    def _infer_getd(self, plan: ops.GetD, env):
        schema = self.infer(plan.input, env)
        self._check_consumed(plan, [plan.in_var], schema)
        self._check_fresh(plan, plan.out_var, schema)
        if schema is None:
            return None
        return schema | frozenset([plan.out_var])

    def _infer_select(self, plan: ops.Select, env):
        schema = self.infer(plan.input, env)
        self._check_consumed(plan, plan.condition.variables(), schema)
        return schema

    def _infer_project(self, plan: ops.Project, env):
        schema = self.infer(plan.input, env)
        seen = set()
        for var in plan.variables:
            if var in seen:
                self.report(
                    "MIX-E002",
                    "project lists {} twice".format(var),
                )
            seen.add(var)
        self._check_consumed(
            plan, plan.variables, schema, code="MIX-E007"
        )
        return frozenset(plan.variables)

    def _infer_join(self, plan: ops.Join, env):
        left = self.infer(plan.left, env)
        right = self.infer(plan.right, env)
        return self._join_like(plan, left, right, combined="union")

    def _infer_semijoin(self, plan: ops.SemiJoin, env):
        left = self.infer(plan.left, env)
        right = self.infer(plan.right, env)
        kept = left if plan.keep == "left" else right
        self._join_like(plan, left, right, combined=None)
        return kept

    def _join_like(self, plan, left, right, combined):
        if left is not None and right is not None:
            overlap = sorted(left & right)
            if overlap:
                self.report(
                    "MIX-E002",
                    "{} inputs both bind {}".format(
                        plan.opname, ", ".join(overlap)
                    ),
                )
            available = left | right
            missing = sorted(plan.used_vars() - available)
            if missing:
                self.report(
                    "MIX-E010",
                    "{} condition references {} bound by neither"
                    " input (schema: {})".format(
                        plan.opname, ", ".join(missing), _fmt(available)
                    ),
                )
        if combined == "union":
            if left is None or right is None:
                return None
            return left | right
        return None

    def _infer_crelt(self, plan: ops.CrElt, env):
        schema = self.infer(plan.input, env)
        self._check_consumed(
            plan,
            [plan.ch_var] + list(plan.skolem_args),
            schema,
            code="MIX-E003",
        )
        self._check_fresh(plan, plan.out_var, schema)
        if schema is None:
            return None
        return schema | frozenset([plan.out_var])

    def _infer_cat(self, plan: ops.Cat, env):
        schema = self.infer(plan.input, env)
        self._check_consumed(
            plan, [plan.x_var, plan.y_var], schema, code="MIX-E003"
        )
        self._check_fresh(plan, plan.out_var, schema)
        if schema is None:
            return None
        return schema | frozenset([plan.out_var])

    def _infer_td(self, plan: ops.TD, env):
        schema = self.infer(plan.input, env)
        self._check_consumed(plan, [plan.var], schema, code="MIX-E006")
        # tD destroys the tuple structure: the output is a tree.
        return frozenset()

    def _infer_groupby(self, plan: ops.GroupBy, env):
        schema = self.infer(plan.input, env)
        seen = set()
        for var in plan.group_vars:
            if var in seen:
                self.report(
                    "MIX-E002",
                    "gBy lists group variable {} twice".format(var),
                )
            seen.add(var)
        self._check_consumed(
            plan, plan.group_vars, schema, code="MIX-E004"
        )
        if plan.out_var in seen:
            self.report(
                "MIX-E002",
                "gBy output {} collides with a group variable".format(
                    plan.out_var
                ),
            )
        return frozenset(plan.group_vars) | frozenset([plan.out_var])

    def _infer_apply(self, plan: ops.Apply, env):
        schema = self.infer(plan.input, env)
        if plan.inp_var is not None:
            self._check_consumed(plan, [plan.inp_var], schema)
        self._check_fresh(plan, plan.out_var, schema)
        nested_env = dict(env)
        if plan.inp_var is not None:
            nested_env[plan.inp_var] = _partition_schema(
                plan.input, plan.inp_var
            )
        self.infer(plan.plan, nested_env)
        if schema is None:
            return None
        return schema | frozenset([plan.out_var])

    def _infer_nestedsrc(self, plan: ops.NestedSrc, env):
        if plan.var not in env:
            self.report(
                "MIX-E005",
                "nestedSrc references {} which no enclosing apply"
                " binds (free context variable)".format(plan.var),
            )
            return None
        return env[plan.var]

    def _infer_relquery(self, plan: ops.RelQuery, env):
        exported = set()
        for entry in plan.varmap:
            if entry.var in exported:
                self.report(
                    "MIX-E008",
                    "rQ exports {} twice".format(entry.var),
                )
            exported.add(entry.var)
        missing = sorted(set(plan.order_vars) - exported)
        if missing:
            self.report(
                "MIX-E007",
                "rQ orders on {} which it does not export".format(
                    ", ".join(missing)
                ),
            )
        if self.catalog is not None:
            try:
                self.catalog.server(plan.server)
            except Exception:
                self.report(
                    "MIX-E009",
                    "rQ references unknown server {!r}".format(
                        plan.server
                    ),
                )
        return frozenset(exported)

    def _infer_empty(self, plan: ops.Empty, env):
        if len(set(plan.variables)) != len(plan.variables):
            self.report(
                "MIX-E002",
                "empty lists a variable twice: {}".format(
                    ", ".join(plan.variables)
                ),
            )
        return frozenset(plan.variables)

    def _infer_orderby(self, plan: ops.OrderBy, env):
        schema = self.infer(plan.input, env)
        self._check_consumed(
            plan, plan.variables, schema, code="MIX-E007"
        )
        return schema

    _DISPATCH: Dict[type, Any] = {
        ops.MkSrc: _infer_mksrc,
        ops.GetD: _infer_getd,
        ops.Select: _infer_select,
        ops.Project: _infer_project,
        ops.Join: _infer_join,
        ops.SemiJoin: _infer_semijoin,
        ops.CrElt: _infer_crelt,
        ops.Cat: _infer_cat,
        ops.TD: _infer_td,
        ops.GroupBy: _infer_groupby,
        ops.Apply: _infer_apply,
        ops.NestedSrc: _infer_nestedsrc,
        ops.RelQuery: _infer_relquery,
        ops.Empty: _infer_empty,
        ops.OrderBy: _infer_orderby,
    }


def _partition_schema(input_plan, inp_var):
    """The binding schema of the partitions bound to ``inp_var``.

    Walks the apply's input through schema-preserving operators to the
    ``groupBy`` that bound ``inp_var``; its *input* schema is what the
    nested plan's ``nestedSrc`` yields per the paper's op-10 semantics
    (a partition is a set of the grouped input's binding lists).
    Returns ``None`` when the producer cannot be traced statically.
    """
    node = input_plan
    while True:
        if isinstance(node, ops.GroupBy) and node.out_var == inp_var:
            return infer_schema(node.input)
        if isinstance(node, (ops.Select, ops.OrderBy)):
            node = node.input
            continue
        if isinstance(node, (ops.Join, ops.SemiJoin)):
            for side in (node.left, node.right):
                schema = infer_schema(side)
                if schema is not None and inp_var in schema:
                    node = side
                    break
            else:
                return None
            continue
        if isinstance(node, (ops.GetD, ops.CrElt, ops.Cat, ops.Apply,
                             ops.GroupBy)):
            # inp_var may come from below these; they keep input bindings.
            if inp_var in node.local_defined_vars():
                return None
            node = node.input
            continue
        return None


def _fmt(schema):
    if not schema:
        return "<empty>"
    return ", ".join(sorted(schema))
