"""The schema-aware XQuery linter.

Relational wrappers export documents with a rigid two-level shape
(Fig. 2): ``document(d)`` is a root whose children are tuple elements
labeled with the table's element label, each with one field child per
column, each field holding one value leaf.  The linter derives that
schema from the wrapper catalog and walks the query AST against it:

* **MIX-W001** dead path: a step can never match (``$b/authr`` against
  a view exposing only ``author``) — the binding or condition is
  statically empty;
* **MIX-W002** type mismatch: comparing a typed column leaf with a
  literal of an incompatible type (``TEXT`` column vs ``42``);
* **MIX-W003** unsatisfiable predicate: conjunctions whose constant
  ranges on one path contradict each other, or a range comparison that
  falls outside the column's fresh ``ANALYZE`` min/max statistics
  (stale statistics are never used — freshness is the PR-4 contract);
* **MIX-W004** unused FOR variable;
* **MIX-W005** unknown document (neither a source nor a named view);
* **MIX-W006** comparing a field element (not its ``data()`` leaf)
  against a literal.

Every diagnostic carries the :class:`~repro.xquery.ast.Span` of the
offending expression, so output points at source line/column.
"""

from __future__ import annotations

from typing import List, Optional

from repro.analysis.diagnostics import Diagnostic
from repro.xmltree.paths import Step
from repro.xquery import ast
from repro.xquery.parser import parse_xquery


class DocumentSchema:
    """The exported shape of one wrapper document."""

    __slots__ = ("doc_id", "label", "columns", "wrapper", "table")

    def __init__(self, doc_id, label, columns, wrapper=None, table=None):
        self.doc_id = doc_id
        self.label = label          # tuple-element label
        self.columns = dict(columns)  # column name -> type name or None
        self.wrapper = wrapper
        self.table = table

    def column_stats(self, column):
        """Fresh :class:`ColumnStatistics` for ``column``, or ``None``."""
        if self.wrapper is None or self.table is None:
            return None
        getter = getattr(self.wrapper, "table_statistics", None)
        if not callable(getter):
            return None
        stats = getter(self.table)
        if stats is None:
            return None
        return stats.column(column)


def catalog_schemas(catalog):
    """``{doc_id: DocumentSchema}`` for every relational document.

    Documents exported by non-relational sources are omitted (unknown
    shape — the linter then skips schema checks for them).
    """
    schemas = {}
    if catalog is None:
        return schemas
    for doc_id in catalog.document_ids():
        source = catalog.source_for(doc_id)
        table_for = getattr(source, "table_for_document", None)
        describe = getattr(source, "describe_table", None)
        label_for = getattr(source, "label_for_document", None)
        if not (callable(table_for) and callable(describe)
                and callable(label_for)):
            continue
        table = table_for(doc_id)
        schema = describe(table)
        columns = {}
        for column in schema.columns:
            type_name = getattr(
                getattr(column, "type", None), "name", None
            )
            columns[column.name] = type_name
        schemas[doc_id] = DocumentSchema(
            doc_id, label_for(doc_id), columns,
            wrapper=source, table=table,
        )
    return schemas


def lint_query(query_text, catalog=None, views=(), source=None):
    """Lint a query (text or parsed AST); returns diagnostics.

    ``catalog`` supplies wrapper schemas; ``views`` names documents that
    are known view roots (their shape is treated as unknown rather than
    flagged MIX-W005).  ``source`` tags the diagnostics with a logical
    input name for multi-file reports.
    """
    query = (
        parse_xquery(query_text)
        if isinstance(query_text, str)
        else query_text
    )
    linter = _Linter(catalog_schemas(catalog), set(views), source)
    linter.lint(query, scope={})
    return linter.diagnostics


class _Shape:
    """Where a path has navigated to inside the two-level document shape.

    ``kind`` is one of ``tuple`` (a whole tuple element — children are
    fields), ``field`` (one column's element — its only descendant is
    the value leaf), ``leaf`` (an atomized value), or ``unknown``.
    """

    __slots__ = ("kind", "schema", "column")

    def __init__(self, kind, schema=None, column=None):
        self.kind = kind
        self.schema = schema
        self.column = column


_UNKNOWN = _Shape("unknown")


class _Linter:
    def __init__(self, schemas, views, source):
        self.schemas = schemas
        self.views = views
        self.source = source
        self.diagnostics: List[Diagnostic] = []

    def report(self, code, message, span):
        self.diagnostics.append(
            Diagnostic(code, message, span=span, source=self.source)
        )

    # -- query traversal ---------------------------------------------------

    def lint(self, query: ast.QueryExpr, scope):
        """Lint one FOR/WHERE/RETURN block; ``scope`` maps outer
        variables to their :class:`_Shape` (nested queries see them)."""
        scope = dict(scope)
        for binding in query.for_bindings:
            # Bindings resolve left to right: a var-rooted operand sees
            # the bindings (outer and earlier) already in scope.
            scope[binding.var] = self._bind_shape(binding, scope)
        ranges = {}
        for condition in query.conditions:
            self._lint_condition(condition, scope, ranges)
        self._lint_return(query.ret, scope)
        self._check_unused(query)

    def _lint_return(self, ret, scope):
        if isinstance(ret, ast.ElemExpr):
            for content in ret.contents:
                self._lint_return(content, scope)
        elif isinstance(ret, ast.QueryExpr):
            self.lint(ret, scope)

    # -- FOR bindings ------------------------------------------------------

    def _bind_shape(self, binding, scope):
        operand = binding.operand
        root = operand.root
        if isinstance(root, ast.DocRoot):
            if root.is_query_root or root.doc_id in self.views:
                return _UNKNOWN
            schema = self.schemas.get(root.doc_id)
            if schema is None:
                if self.schemas or self.views:
                    # With no catalog at all, every document is equally
                    # unknown — stay silent rather than flag them all.
                    known = sorted(self.schemas) + sorted(self.views)
                    self.report(
                        "MIX-W005",
                        "unknown document {!r} (known: {})".format(
                            root.doc_id, ", ".join(known)
                        ),
                        operand.span,
                    )
                return _UNKNOWN
            return self._walk_path(_Shape("docroot", schema), operand)
        # Variable-rooted: resolve through the (outer or earlier) scope.
        return self._walk_path(
            scope.get(root.var, _UNKNOWN), operand
        )

    # -- path navigation ---------------------------------------------------

    def _resolve_operand(self, operand, scope):
        """The :class:`_Shape` a condition/binding path lands on."""
        root = operand.root
        if isinstance(root, ast.DocRoot):
            if root.is_query_root or root.doc_id in self.views:
                return _UNKNOWN
            schema = self.schemas.get(root.doc_id)
            if schema is None:
                return _UNKNOWN
            return self._walk_path(_Shape("docroot", schema), operand)
        start = scope.get(root.var, _UNKNOWN)
        return self._walk_path(start, operand)

    def _walk_path(self, start, operand):
        """Navigate ``operand.path`` from ``start``, reporting MIX-W001
        on the first impossible step."""
        shape = start
        for step in operand.path.steps:
            if shape.kind == "unknown":
                return _UNKNOWN
            if shape.kind == "docroot":
                if step.kind == Step.DATA:
                    return _UNKNOWN
                if (step.kind == Step.LABEL
                        and step.label != shape.schema.label):
                    self._dead_step(operand, step, shape)
                    return _UNKNOWN
                shape = _Shape("tuple", shape.schema)
            elif shape.kind == "tuple":
                if step.kind == Step.DATA:
                    return _UNKNOWN
                if step.kind == Step.WILD:
                    shape = _Shape("field", shape.schema, None)
                elif step.label not in shape.schema.columns:
                    self._dead_step(operand, step, shape)
                    return _UNKNOWN
                else:
                    shape = _Shape("field", shape.schema, step.label)
            elif shape.kind == "field":
                if step.kind == Step.DATA:
                    shape = _Shape("leaf", shape.schema, shape.column)
                elif step.kind == Step.LABEL:
                    self._dead_step(operand, step, shape)
                    return _UNKNOWN
                else:
                    return _UNKNOWN
            else:  # leaf: nothing below an atomized value
                self._dead_step(operand, step, shape)
                return _UNKNOWN
        return shape

    def _dead_step(self, operand, step, shape):
        if shape.kind == "docroot":
            exposes = [shape.schema.label]
        elif shape.kind == "tuple":
            exposes = sorted(shape.schema.columns)
        else:
            exposes = []
        detail = (
            " (view exposes: {})".format(", ".join(exposes))
            if exposes
            else " (an atomized value has no children)"
        )
        self.report(
            "MIX-W001",
            "dead path {}: step {} can never match{}".format(
                repr(operand), repr(step), detail
            ),
            operand.span,
        )

    # -- WHERE conditions --------------------------------------------------

    def _lint_condition(self, condition, scope, ranges):
        sides = []
        for operand in (condition.left, condition.right):
            if isinstance(operand, ast.PathOperand):
                sides.append(self._resolve_operand(operand, scope))
            else:
                sides.append(operand)
        for operand, shape in zip(
            (condition.left, condition.right), sides
        ):
            if isinstance(shape, _Shape) and shape.kind == "field":
                other = sides[1] if shape is sides[0] else sides[0]
                if isinstance(other, ast.Literal):
                    self.report(
                        "MIX-W006",
                        "{} names the {} field element, not its"
                        " value; append /data()".format(
                            repr(operand), shape.column or "matched"
                        ),
                        operand.span,
                    )
        self._lint_var_const(condition, sides, ranges)

    def _lint_var_const(self, condition, sides, ranges):
        """Type/range checks for path-vs-literal comparisons."""
        left, right = sides
        if isinstance(left, _Shape) and isinstance(right, ast.Literal):
            shape, literal, op = left, right, condition.op
            operand = condition.left
        elif isinstance(right, _Shape) and isinstance(left, ast.Literal):
            shape, literal, op = right, left, _flip(condition.op)
            operand = condition.right
        else:
            return
        if shape.kind not in ("leaf", "field") or shape.column is None:
            return
        type_name = shape.schema.columns.get(shape.column)
        value = literal.value
        if type_name is not None:
            numeric_column = type_name in ("INTEGER", "REAL")
            numeric_literal = isinstance(value, (int, float))
            if numeric_column != numeric_literal:
                self.report(
                    "MIX-W002",
                    "comparing {} column {!r} with {!r} can never be"
                    " true".format(
                        type_name, shape.column, value
                    ),
                    condition.span,
                )
                return
        if not isinstance(value, (int, float)):
            return
        self._lint_range(condition, operand, shape, op, value, ranges)

    def _lint_range(self, condition, operand, shape, op, value, ranges):
        """Interval reasoning: contradictions within the conjunction,
        and emptiness against fresh ANALYZE min/max statistics."""
        interval = _interval(op, value)
        if interval is None:
            return
        key = repr(operand)
        prior = ranges.get(key, (float("-inf"), float("inf")))
        merged = (max(prior[0], interval[0]), min(prior[1], interval[1]))
        ranges[key] = merged
        if merged[0] > merged[1]:
            self.report(
                "MIX-W003",
                "contradictory constraints on {}: the WHERE clause"
                " admits no value".format(key),
                condition.span,
            )
            return
        stats = shape.schema.column_stats(shape.column)
        if stats is None or stats.min is None or stats.max is None:
            return
        if interval[0] > stats.max or interval[1] < stats.min:
            self.report(
                "MIX-W003",
                "predicate {} {} {} is outside the analyzed value"
                " range [{}, {}] of column {!r}".format(
                    key, op, value, stats.min, stats.max, shape.column
                ),
                condition.span,
            )

    # -- unused variables --------------------------------------------------

    def _check_unused(self, query):
        used = set()
        for binding in query.for_bindings:
            root = binding.operand.root
            if isinstance(root, ast.VarRoot):
                used.add(root.var)
        for condition in query.conditions:
            for operand in (condition.left, condition.right):
                if isinstance(operand, ast.PathOperand) and isinstance(
                    operand.root, ast.VarRoot
                ):
                    used.add(operand.root.var)
        used |= _return_uses(query.ret)
        for binding in query.for_bindings:
            if binding.var not in used:
                self.report(
                    "MIX-W004",
                    "FOR variable {} is bound but never used".format(
                        binding.var
                    ),
                    binding.span,
                )


def _return_uses(ret):
    """Every variable a RETURN element mentions, group-by lists included."""
    if isinstance(ret, ast.VarRef):
        return {ret.var}
    if isinstance(ret, ast.ElemExpr):
        out = set(ret.group_by)
        for content in ret.contents:
            out |= _return_uses(content)
        return out
    if isinstance(ret, ast.QueryExpr):
        return ret.free_vars()
    return set()


def _flip(op):
    """Mirror a relop so the path is always on the left."""
    return {"<": ">", "<=": ">=", ">": "<", ">=": "<="}.get(op, op)


def _interval(op, value) -> Optional[tuple]:
    """The closed interval a ``path op value`` comparison admits.

    Strict bounds are modeled with an epsilon nudge, which is exact for
    the emptiness tests the linter performs on integer-valued stats.
    """
    if op == "=":
        return (value, value)
    if op == "<":
        return (float("-inf"), value - 1e-9)
    if op == "<=":
        return (float("-inf"), value)
    if op == ">":
        return (value + 1e-9, float("inf"))
    if op == ">=":
        return (value, float("inf"))
    return None  # != constrains nothing representable as one interval
