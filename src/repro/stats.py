"""Instrumentation counters shared by the sources and the engine.

The paper's claims are about *how much work reaches the sources*: how many
SQL queries are issued, how many tuples cross the wrapper boundary, and how
much the mediator materializes.  Every experiment in ``benchmarks/`` reads
these counters.

Since the observability refactor the registry is
:class:`repro.obs.Instrument` — a strict superset of the old
``StatsRegistry`` that additionally records per-operator node metrics and
span-based navigation traces.  ``StatsRegistry`` remains as a
backwards-compatible alias; new code should import
:class:`~repro.obs.Instrument` directly.

Usage::

    stats = StatsRegistry()          # == repro.obs.Instrument()
    stats.incr("sql_queries")
    stats.incr("tuples_shipped", 42)
    with stats.timer("rewrite"):
        ...
    snapshot = stats.snapshot()
"""

from __future__ import annotations

from repro.obs.instrument import Instrument as StatsRegistry

__all__ = ["StatsRegistry"]

#: Counter names used across the library, centralised so experiments and
#: sources agree on spelling.
SQL_QUERIES = "sql_queries"            # SQL statements executed by a source
TUPLES_SHIPPED = "tuples_shipped"      # rows fetched through a cursor
ROWS_SCANNED = "rows_scanned"          # base-table rows touched by the executor
SOURCE_NAVIGATIONS = "source_navigations"  # d/r commands sent to a source
OPERATOR_TUPLES = "operator_tuples"    # tuples produced by mediator operators
ELEMENTS_BUILT = "elements_built"      # XML elements constructed (crElt)
BUFFERED_TUPLES = "buffered_tuples"    # peak tuples buffered by stateful ops
INDEX_LOOKUPS = "index_lookups"        # secondary-index probes in the DB
RQ_STATEMENTS = "rq_statements"        # SQL pushed by rQ plan operators
QDOM_COMMANDS = "qdom_commands"        # navigation commands entering the mediator
SOURCE_RETRIES = "source_retries"      # retried source calls/pulls (resilience)
SOURCE_TIMEOUTS = "source_timeouts"    # source calls over their latency budget
SOURCE_FAILURES = "source_failures"    # failed source calls/pulls (pre-retry)
BREAKER_TRANSITIONS = "breaker_transitions"  # circuit-breaker state changes
DEGRADED_RESULTS = "degraded_results"  # <mix:error> stubs substituted
FAULTS_INJECTED = "faults_injected"    # faults fired by FaultInjectingSource
TUPLES_FROM_CACHE = "tuples_from_cache"  # rows replayed by the SQL result cache
JOIN_TUPLES = "join_tuples"            # tuples flowing through executor joins
TABLES_ANALYZED = "tables_analyzed"    # tables profiled by ANALYZE
BLOCKS_SHIPPED = "blocks_shipped"      # row batches fetched block-at-a-time
PREFETCH_HITS = "prefetch_hits"        # d/r commands served from a prefetched prefix

# Sharding counters (see repro.sources.shard).  A pushed SQL statement
# scatters to the shard members its predicates cannot rule out; pruned
# members are never contacted, failed members degrade to partial answers.
SHARDS_SCATTERED = "shards_scattered"  # member streams opened by scatter-gather
SHARDS_PRUNED = "shards_pruned"        # members skipped by per-shard min/max stats
SHARDS_FAILED = "shards_failed"        # member streams that failed mid-gather

# Server admission counters (see repro.server).  Requests are counted
# at the service boundary; rejected = typed-error replies for limits,
# backpressure, protocol violations, and unknown sessions/handles.
SERVE_REQUESTS = "serve_requests"          # frames dispatched to the service
SERVE_ACCEPTED = "serve_accepted"          # requests admitted past limits
SERVE_REJECTED = "serve_rejected"          # typed rejections (MIX-E-*)
SERVE_ERRORS = "serve_errors"              # accepted requests that failed
SERVE_SESSIONS_OPENED = "serve_sessions_opened"
SERVE_SESSIONS_CLOSED = "serve_sessions_closed"
SERVE_ACTIVE_SESSIONS = "serve_active_sessions"  # opened - closed (gauge)

# Cache counters (see repro.cache).  Each cache mirrors its LRU counts
# onto the instrument under "<prefix>_<event>"; the prefixes are:
PLAN_CACHE = "plan_cache"              # compiled-plan cache (Mediator)
NAV_MEMO = "nav_memo"                  # navigation memo (Mediator)
SQL_CACHE = "sql_cache"                # pushed-SQL result cache (wrapper)
PLAN_CACHE_HITS = "plan_cache_hits"
PLAN_CACHE_MISSES = "plan_cache_misses"
PLAN_CACHE_EVICTIONS = "plan_cache_evictions"
PLAN_CACHE_INVALIDATIONS = "plan_cache_invalidations"
NAV_MEMO_HITS = "nav_memo_hits"
NAV_MEMO_MISSES = "nav_memo_misses"
NAV_MEMO_EVICTIONS = "nav_memo_evictions"
NAV_MEMO_INVALIDATIONS = "nav_memo_invalidations"
SQL_CACHE_HITS = "sql_cache_hits"
SQL_CACHE_MISSES = "sql_cache_misses"
SQL_CACHE_EVICTIONS = "sql_cache_evictions"
SQL_CACHE_INVALIDATIONS = "sql_cache_invalidations"
