"""Instrumentation counters shared by the sources and the engine.

The paper's claims are about *how much work reaches the sources*: how many
SQL queries are issued, how many tuples cross the wrapper boundary, and how
much the mediator materializes.  Every experiment in ``benchmarks/`` reads
these counters, so they live in one small registry that the relational
engine, the wrappers, and the lazy engine all share.

Usage::

    stats = StatsRegistry()
    stats.incr("sql_queries")
    stats.incr("tuples_shipped", 42)
    with stats.timer("rewrite"):
        ...
    snapshot = stats.snapshot()
"""

from __future__ import annotations

import time
from contextlib import contextmanager


class StatsRegistry:
    """A named bag of monotonically increasing counters and timers."""

    def __init__(self):
        self._counters = {}
        self._timers = {}

    def incr(self, name, amount=1):
        """Increase counter ``name`` by ``amount`` (default 1)."""
        self._counters[name] = self._counters.get(name, 0) + amount

    def get(self, name):
        """Current value of counter ``name`` (0 if never incremented)."""
        return self._counters.get(name, 0)

    def reset(self):
        """Zero every counter and timer."""
        self._counters.clear()
        self._timers.clear()

    @contextmanager
    def timer(self, name):
        """Context manager accumulating wall-clock seconds under ``name``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self._timers[name] = self._timers.get(name, 0.0) + elapsed

    def elapsed(self, name):
        """Total seconds accumulated by :meth:`timer` under ``name``."""
        return self._timers.get(name, 0.0)

    def snapshot(self):
        """An immutable copy of all counters (timers under ``time:<name>``)."""
        merged = dict(self._counters)
        for name, secs in self._timers.items():
            merged["time:" + name] = secs
        return merged

    def diff(self, before):
        """Counter deltas relative to an earlier :meth:`snapshot`."""
        now = self.snapshot()
        keys = set(now) | set(before)
        return {k: now.get(k, 0) - before.get(k, 0) for k in keys}

    def __repr__(self):
        parts = ", ".join(
            "{}={}".format(k, v) for k, v in sorted(self.snapshot().items())
        )
        return "StatsRegistry({})".format(parts)


#: Counter names used across the library, centralised so experiments and
#: sources agree on spelling.
SQL_QUERIES = "sql_queries"            # SQL statements executed by a source
TUPLES_SHIPPED = "tuples_shipped"      # rows fetched through a cursor
ROWS_SCANNED = "rows_scanned"          # base-table rows touched by the executor
SOURCE_NAVIGATIONS = "source_navigations"  # d/r commands sent to a source
OPERATOR_TUPLES = "operator_tuples"    # tuples produced by mediator operators
ELEMENTS_BUILT = "elements_built"      # XML elements constructed (crElt)
BUFFERED_TUPLES = "buffered_tuples"    # peak tuples buffered by stateful ops
INDEX_LOOKUPS = "index_lookups"        # secondary-index probes in the DB
