"""The database facade: tables, DDL/DML, and query execution."""

from __future__ import annotations

import itertools
import threading

from repro import stats as statnames
from repro.errors import SchemaError, SqlError
from repro.relational import ast
from repro.relational.cursor import Cursor
from repro.relational.executor import compare, execute_select
from repro.relational.parser import parse_sql
from repro.relational.schema import Column, TableSchema
from repro.relational.table import Table
from repro.obs.instrument import Instrument


class Database:
    """A named collection of tables plus a statistics registry.

    Example::

        db = Database("auction")
        db.run("CREATE TABLE customer (id TEXT, name TEXT, addr TEXT,"
               " PRIMARY KEY (id))")
        db.run("INSERT INTO customer VALUES ('XYZ', 'XYZInc.', 'LosAngeles')")
        cursor = db.execute("SELECT id, name FROM customer ORDER BY id")
        cursor.fetchone()   # ('XYZ', 'XYZInc.')
    """

    def __init__(self, name="db", stats=None, optimizer=True):
        self.name = name
        self.stats = stats or Instrument()
        #: When true the executor plans SELECTs cost-based (join order,
        #: build side, index choice) from ``ANALYZE`` statistics; when
        #: false it keeps the seed's syntactic FROM-order planning.
        self.optimizer = optimizer
        self._tables = {}
        # Table *epochs* make versions survive drop/recreate: a table
        # recreated under an old name gets a fresh epoch from this
        # monotone clock, so no cached fingerprint can ever match it.
        self._epoch_clock = itertools.count(1)
        self._epochs = {}
        # Writers are serialized: concurrent DML/DDL from server threads
        # would otherwise lose ``Table.version`` bumps (a read-modify-
        # write), and a lost bump makes the result caches serve stale
        # rows.  Readers never take this lock — delete/update swap in a
        # fresh row list atomically, so an open cursor keeps iterating a
        # consistent snapshot.
        self._write_lock = threading.RLock()

    # -- schema ---------------------------------------------------------------

    def create_table(self, name, columns, primary_key=()):
        """Create a table from ``[(col_name, ColumnType), ...]``."""
        if name in self._tables:
            raise SchemaError("table {!r} already exists".format(name))
        schema = TableSchema(
            name, [Column(n, t) for n, t in columns], primary_key
        )
        table = Table(schema, stats=self.stats)
        self._tables[name] = table
        self._epochs[name] = next(self._epoch_clock)
        return table

    def drop_table(self, name):
        self.table(name)  # raises when absent
        del self._tables[name]
        del self._epochs[name]

    def table(self, name):
        """The :class:`Table` called ``name`` (raises :class:`SchemaError`)."""
        try:
            return self._tables[name]
        except KeyError:
            raise SchemaError("no table {!r} in database {!r}".format(
                name, self.name
            ))

    def table_names(self):
        return sorted(self._tables)

    def has_table(self, name):
        return name in self._tables

    def table_versions(self):
        """``{table: (epoch, write_version)}`` for every live table.

        The pair is the exact invalidation token of :mod:`repro.cache`:
        ``write_version`` moves on every DML/DDL statement touching the
        table (see :class:`~repro.relational.table.Table`), ``epoch``
        moves when the table is dropped and recreated.  Reads never move
        either, so a cache keyed on these tokens is invalidated by
        writes and only by writes — never by time.

        Taken under the write lock so a fingerprint never interleaves
        with a half-applied statement (no torn version snapshots).
        """
        with self._write_lock:
            return {
                name: (self._epochs[name], table.version)
                for name, table in self._tables.items()
            }

    # -- optimizer statistics ----------------------------------------------------

    def analyze(self, table_name=None):
        """Collect optimizer statistics (``ANALYZE [table]``).

        Profiles ``table_name`` (or every table) and stores a
        :class:`~repro.optimizer.statistics.TableStatistics` snapshot on
        each table, stamped with the table's current ``(epoch,
        version)`` so later DML makes it stale rather than wrong.
        Returns the number of tables analyzed.
        """
        from repro.optimizer.statistics import collect_table_statistics

        names = [table_name] if table_name else self.table_names()
        with self._write_lock:
            for name in names:
                table = self.table(name)
                table.statistics = collect_table_statistics(
                    table, epoch=self._epochs[name]
                )
        if names:
            self.stats.incr(statnames.TABLES_ANALYZED, len(names))
        return len(names)

    def estimate(self, sql):
        """Estimated result rows for a SELECT, or ``None``.

        Requires fresh (post-``ANALYZE``, pre-DML) statistics on every
        referenced table; never touches data or counters.
        """
        from repro.optimizer.cost import estimate_select

        stmt = parse_sql(sql)
        if not isinstance(stmt, ast.SelectStmt):
            raise SqlError("estimate() is for SELECT statements")
        return estimate_select(self, stmt)

    # -- statement execution ----------------------------------------------------

    def execute(self, sql):
        """Execute a SELECT; returns a :class:`Cursor`.

        Issuing the statement counts one :data:`repro.stats.SQL_QUERIES`;
        rows are counted as shipped only when fetched.
        """
        stmt = parse_sql(sql)
        if not isinstance(stmt, ast.SelectStmt):
            raise SqlError("execute() is for SELECT; use run() for DDL/DML")
        self.stats.incr(statnames.SQL_QUERIES)
        self.stats.event("sql", sql, database=self.name)
        names, rows = execute_select(self, stmt, obs=self.stats)
        return Cursor(names, rows, stats=self.stats)

    def run(self, sql):
        """Execute DDL/DML; returns the affected row count.

        Statements are applied under the database write lock, so
        concurrent writers from different threads serialize and every
        version bump is counted.
        """
        stmt = parse_sql(sql)
        if isinstance(stmt, ast.SelectStmt):
            raise SqlError("run() is for DDL/DML; use execute() for SELECT")
        with self._write_lock:
            return self._apply(stmt)

    def _apply(self, stmt):
        if isinstance(stmt, ast.CreateTableStmt):
            self.create_table(stmt.name, stmt.columns, stmt.primary_key)
            return 0
        if isinstance(stmt, ast.CreateIndexStmt):
            self.table(stmt.table).create_index(stmt.columns)
            return 0
        if isinstance(stmt, ast.InsertStmt):
            table = self.table(stmt.table)
            return table.insert_many(stmt.rows)
        if isinstance(stmt, ast.DeleteStmt):
            table = self.table(stmt.table)
            pred = self._row_predicate(table, stmt.predicates)
            return table.delete_where(pred)
        if isinstance(stmt, ast.AnalyzeStmt):
            return self.analyze(stmt.table)
        if isinstance(stmt, ast.UpdateStmt):
            table = self.table(stmt.table)
            pred = self._row_predicate(table, stmt.predicates)
            assignments = [
                (table.schema.column_index(col), lit.value)
                for col, lit in stmt.assignments
            ]

            def updater(row):
                new_row = list(row)
                for idx, value in assignments:
                    new_row[idx] = value
                return new_row

            return table.update_where(pred, updater)
        raise SqlError("unsupported statement {!r}".format(stmt))

    def _row_predicate(self, table, predicates):
        """Compile WHERE predicates into a single-row test for DML."""
        compiled = []
        for p in predicates:
            left = self._dml_operand(table, p.left)
            right = self._dml_operand(table, p.right)
            compiled.append((left, p.op, right))

        def test(row):
            return all(
                compare(lhs(row), op, rhs(row)) for lhs, op, rhs in compiled
            )

        return test

    @staticmethod
    def _dml_operand(table, operand):
        if isinstance(operand, ast.Literal):
            value = operand.value
            return lambda row: value
        if operand.qualifier not in (None, table.schema.name):
            raise SchemaError(
                "DML predicates may only reference {!r}".format(
                    table.schema.name
                )
            )
        idx = table.schema.column_index(operand.column)
        return lambda row, i=idx: row[i]

    def __repr__(self):
        return "Database({}, tables={})".format(self.name, self.table_names())
