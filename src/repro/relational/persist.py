"""Saving and loading databases as JSON files.

The substrate is in-memory; persistence lets examples and experiments
snapshot a generated workload and reload it later (or inspect it by
hand).  The format is plain JSON: schemas (with types, keys, and
secondary indexes) plus row data.
"""

from __future__ import annotations

import json

from repro.errors import SqlError
from repro.relational.database import Database
from repro.relational.types import TYPE_NAMES

_FORMAT_VERSION = 1


def dump_database(database, path=None):
    """Serialize ``database`` to a JSON string (and to ``path`` if given)."""
    payload = {
        "format_version": _FORMAT_VERSION,
        "name": database.name,
        "tables": [],
    }
    for table_name in database.table_names():
        table = database.table(table_name)
        schema = table.schema
        payload["tables"].append(
            {
                "name": schema.name,
                "columns": [
                    {"name": c.name, "type": c.type.name}
                    for c in schema.columns
                ],
                "primary_key": list(schema.primary_key),
                "indexes": [list(cols) for cols in table.indexes()],
                "rows": [list(row) for row in table.rows_snapshot()],
            }
        )
    text = json.dumps(payload, indent=2)
    if path is not None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(text)
    return text


def load_database(source, stats=None):
    """Rebuild a database from :func:`dump_database` output.

    ``source`` is a JSON string or a file path.
    """
    if "\n" not in source and not source.lstrip().startswith("{"):
        with open(source, "r", encoding="utf-8") as handle:
            text = handle.read()
    else:
        text = source
    payload = json.loads(text)
    version = payload.get("format_version")
    if version != _FORMAT_VERSION:
        raise SqlError(
            "unsupported database dump version {!r}".format(version)
        )
    database = Database(payload.get("name", "db"), stats=stats)
    for spec in payload["tables"]:
        columns = [
            (c["name"], TYPE_NAMES[c["type"].upper()])
            for c in spec["columns"]
        ]
        table = database.create_table(
            spec["name"], columns, tuple(spec.get("primary_key", ()))
        )
        for row in spec.get("rows", ()):
            table.insert(row)
        for index_columns in spec.get("indexes", ()):
            table.create_index(index_columns)
    return database
