"""Recursive-descent parser for the SQL subset."""

from __future__ import annotations

from repro.errors import SqlParseError
from repro.relational import ast
from repro.relational.lexer import (
    EOF,
    IDENT,
    KEYWORD,
    NUMBER,
    STRING,
    SYMBOL,
    tokenize,
)
from repro.relational.types import TYPE_NAMES


class _TokenStream:
    def __init__(self, sql):
        self.sql = sql
        self.tokens = tokenize(sql)
        self.index = 0

    def peek(self):
        return self.tokens[self.index]

    def next(self):
        tok = self.tokens[self.index]
        if tok.kind != EOF:
            self.index += 1
        return tok

    def accept(self, kind, text=None):
        tok = self.peek()
        if tok.kind == kind and (text is None or tok.text == text):
            return self.next()
        return None

    def expect(self, kind, text=None):
        tok = self.accept(kind, text)
        if tok is None:
            actual = self.peek()
            raise SqlParseError(
                "expected {} {!r}, got {!r}".format(
                    kind, text or "", actual.text
                ),
                self.sql,
                actual.pos,
            )
        return tok

    def at_keyword(self, word):
        tok = self.peek()
        return tok.kind == KEYWORD and tok.text == word

    def error(self, message):
        tok = self.peek()
        return SqlParseError(message, self.sql, tok.pos)


def parse_sql(sql):
    """Parse one SQL statement; returns an AST node from :mod:`ast`."""
    stream = _TokenStream(sql)
    tok = stream.peek()
    if tok.kind != KEYWORD:
        raise stream.error("expected a SQL statement")
    dispatch = {
        "SELECT": _parse_select,
        "CREATE": _parse_create,
        "INSERT": _parse_insert,
        "DELETE": _parse_delete,
        "UPDATE": _parse_update,
        "ANALYZE": _parse_analyze,
    }
    handler = dispatch.get(tok.text)
    if handler is None:
        raise stream.error("unsupported statement {!r}".format(tok.text))
    node = handler(stream)
    stream.expect(EOF)
    return node


# -- SELECT -------------------------------------------------------------------


def _parse_select(stream):
    stream.expect(KEYWORD, "SELECT")
    distinct = stream.accept(KEYWORD, "DISTINCT") is not None
    items = [_parse_select_item(stream)]
    while stream.accept(SYMBOL, ","):
        items.append(_parse_select_item(stream))
    stream.expect(KEYWORD, "FROM")
    tables = [_parse_table_ref(stream)]
    while stream.accept(SYMBOL, ","):
        tables.append(_parse_table_ref(stream))
    predicates = []
    if stream.accept(KEYWORD, "WHERE"):
        predicates.append(_parse_predicate(stream))
        while stream.accept(KEYWORD, "AND"):
            predicates.append(_parse_predicate(stream))
    order_by = []
    if stream.accept(KEYWORD, "ORDER"):
        stream.expect(KEYWORD, "BY")
        order_by.append(_parse_colref(stream))
        stream.accept(KEYWORD, "ASC")
        while stream.accept(SYMBOL, ","):
            order_by.append(_parse_colref(stream))
            stream.accept(KEYWORD, "ASC")
    return ast.SelectStmt(items, tables, predicates, order_by, distinct)


def _parse_select_item(stream):
    if stream.accept(SYMBOL, "*"):
        return ast.SelectItem(ast.SelectItem.STAR)
    ref = _parse_colref(stream)
    alias = None
    if stream.accept(KEYWORD, "AS"):
        alias = stream.expect(IDENT).text
    return ast.SelectItem(ref, alias)


def _parse_table_ref(stream):
    table = stream.expect(IDENT).text
    alias_tok = stream.accept(IDENT)
    return ast.TableRef(table, alias_tok.text if alias_tok else None)


def _parse_colref(stream):
    first = stream.expect(IDENT).text
    if stream.accept(SYMBOL, "."):
        column = stream.expect(IDENT).text
        return ast.ColRef(column, qualifier=first)
    return ast.ColRef(first)


def _parse_operand(stream):
    tok = stream.peek()
    if tok.kind == NUMBER or tok.kind == STRING:
        stream.next()
        return ast.Literal(tok.value)
    if tok.kind == KEYWORD and tok.text == "NULL":
        stream.next()
        return ast.Literal(None)
    if tok.kind == IDENT:
        return _parse_colref(stream)
    raise stream.error("expected a column or literal")


def _parse_predicate(stream):
    left = _parse_operand(stream)
    op_tok = stream.peek()
    if op_tok.kind != SYMBOL or op_tok.text not in ast.COMPARISON_OPS:
        raise stream.error("expected a comparison operator")
    stream.next()
    right = _parse_operand(stream)
    return ast.Predicate(left, op_tok.text, right)


# -- DDL / DML -----------------------------------------------------------------


def _parse_create(stream):
    stream.expect(KEYWORD, "CREATE")
    if stream.accept(KEYWORD, "INDEX"):
        index_name = stream.expect(IDENT).text
        stream.expect(KEYWORD, "ON")
        table = stream.expect(IDENT).text
        stream.expect(SYMBOL, "(")
        columns = [stream.expect(IDENT).text]
        while stream.accept(SYMBOL, ","):
            columns.append(stream.expect(IDENT).text)
        stream.expect(SYMBOL, ")")
        return ast.CreateIndexStmt(index_name, table, columns)
    stream.expect(KEYWORD, "TABLE")
    name = stream.expect(IDENT).text
    stream.expect(SYMBOL, "(")
    columns = []
    primary_key = ()
    while True:
        if stream.at_keyword("PRIMARY"):
            stream.next()
            stream.expect(KEYWORD, "KEY")
            stream.expect(SYMBOL, "(")
            key_cols = [stream.expect(IDENT).text]
            while stream.accept(SYMBOL, ","):
                key_cols.append(stream.expect(IDENT).text)
            stream.expect(SYMBOL, ")")
            primary_key = tuple(key_cols)
        else:
            col_name = stream.expect(IDENT).text
            type_tok = stream.peek()
            if type_tok.kind != IDENT or type_tok.text.upper() not in TYPE_NAMES:
                raise stream.error(
                    "unknown column type {!r}".format(type_tok.text)
                )
            stream.next()
            columns.append((col_name, TYPE_NAMES[type_tok.text.upper()]))
        if not stream.accept(SYMBOL, ","):
            break
    stream.expect(SYMBOL, ")")
    return ast.CreateTableStmt(name, columns, primary_key)


def _parse_insert(stream):
    stream.expect(KEYWORD, "INSERT")
    stream.expect(KEYWORD, "INTO")
    table = stream.expect(IDENT).text
    stream.expect(KEYWORD, "VALUES")
    rows = [_parse_value_tuple(stream)]
    while stream.accept(SYMBOL, ","):
        rows.append(_parse_value_tuple(stream))
    return ast.InsertStmt(table, rows)


def _parse_value_tuple(stream):
    stream.expect(SYMBOL, "(")
    values = [_parse_literal_value(stream)]
    while stream.accept(SYMBOL, ","):
        values.append(_parse_literal_value(stream))
    stream.expect(SYMBOL, ")")
    return values


def _parse_literal_value(stream):
    tok = stream.peek()
    if tok.kind in (NUMBER, STRING):
        stream.next()
        return tok.value
    if tok.kind == KEYWORD and tok.text == "NULL":
        stream.next()
        return None
    raise stream.error("expected a literal value")


def _parse_delete(stream):
    stream.expect(KEYWORD, "DELETE")
    stream.expect(KEYWORD, "FROM")
    table = stream.expect(IDENT).text
    predicates = []
    if stream.accept(KEYWORD, "WHERE"):
        predicates.append(_parse_predicate(stream))
        while stream.accept(KEYWORD, "AND"):
            predicates.append(_parse_predicate(stream))
    return ast.DeleteStmt(table, predicates)


def _parse_update(stream):
    stream.expect(KEYWORD, "UPDATE")
    table = stream.expect(IDENT).text
    stream.expect(KEYWORD, "SET")
    assignments = [_parse_assignment(stream)]
    while stream.accept(SYMBOL, ","):
        assignments.append(_parse_assignment(stream))
    predicates = []
    if stream.accept(KEYWORD, "WHERE"):
        predicates.append(_parse_predicate(stream))
        while stream.accept(KEYWORD, "AND"):
            predicates.append(_parse_predicate(stream))
    return ast.UpdateStmt(table, assignments, predicates)


def _parse_analyze(stream):
    stream.expect(KEYWORD, "ANALYZE")
    table_tok = stream.accept(IDENT)
    return ast.AnalyzeStmt(table_tok.text if table_tok else None)


def _parse_assignment(stream):
    col = stream.expect(IDENT).text
    stream.expect(SYMBOL, "=")
    value = _parse_literal_value(stream)
    return (col, ast.Literal(value))
