"""Column types of the relational substrate.

Three scalar types suffice for the paper's workloads: INTEGER, REAL, and
TEXT.  Each type validates and coerces Python values on insert so that
the executor can compare column values without per-row type dispatch.
"""

from __future__ import annotations

from repro.errors import TypeMismatchError


class ColumnType:
    """A scalar column type with validation and coercion."""

    def __init__(self, name, python_types, coerce):
        self.name = name
        self._python_types = python_types
        self._coerce = coerce

    def accept(self, value):
        """Coerce ``value`` to this type, raising on mismatch.

        ``None`` is accepted by every type (SQL NULL).
        """
        if value is None:
            return None
        if isinstance(value, self._python_types) and not isinstance(value, bool):
            return self._coerce(value)
        try:
            return self._coerce(value)
        except (TypeError, ValueError):
            raise TypeMismatchError(
                "value {!r} is not a {}".format(value, self.name)
            )

    def __repr__(self):
        return self.name

    def __eq__(self, other):
        return isinstance(other, ColumnType) and self.name == other.name

    def __hash__(self):
        return hash(self.name)


def _coerce_int(value):
    if isinstance(value, float) and not value.is_integer():
        raise TypeMismatchError("{!r} is not an integer".format(value))
    if isinstance(value, str):
        return int(value.strip())
    return int(value)


def _coerce_real(value):
    if isinstance(value, str):
        return float(value.strip())
    return float(value)


INTEGER = ColumnType("INTEGER", (int,), _coerce_int)
REAL = ColumnType("REAL", (int, float), _coerce_real)
TEXT = ColumnType("TEXT", (str,), str)

#: Type names the SQL DDL parser recognises (with common aliases).
TYPE_NAMES = {
    "INT": INTEGER,
    "INTEGER": INTEGER,
    "REAL": REAL,
    "FLOAT": REAL,
    "DOUBLE": REAL,
    "TEXT": TEXT,
    "VARCHAR": TEXT,
    "STRING": TEXT,
    "CHAR": TEXT,
}
