"""In-memory tables with primary-key enforcement and scan counting."""

from __future__ import annotations

from repro.errors import IntegrityError, SchemaError
from repro import stats as statnames


class Table:
    """Rows of a single relation, stored as tuples in insertion order.

    A primary-key index (when the schema declares a key) gives O(1)
    point lookups, which the executor uses for key-equality predicates
    and the wrapper for oid-driven fetches.
    """

    def __init__(self, schema, stats=None):
        self.schema = schema
        self._rows = []
        self._stats = stats
        self._key_index = {} if schema.primary_key else None
        self._secondary = {}  # tuple(column names) -> {values: [positions]}
        #: Monotone write version: every DML/DDL touching this table
        #: bumps it, which is what the SQL result cache and the
        #: navigation memo fingerprint (version-based invalidation).
        self.version = 0
        #: Optimizer statistics (:class:`repro.optimizer.statistics
        #: .TableStatistics`) from the last ``ANALYZE``, or ``None``.
        #: Never invalidated in place — consumers compare the recorded
        #: version against the live one (same tokens as the cache).
        self.statistics = None

    def __len__(self):
        return len(self._rows)

    # -- mutation ------------------------------------------------------------

    def insert(self, values):
        """Insert one row (a sequence of values in column order)."""
        row = self.schema.validate_row(values)
        if self._key_index is not None:
            key = tuple(row[i] for i in self.schema.key_indexes())
            if key in self._key_index:
                raise IntegrityError(
                    "duplicate primary key {!r} in table {!r}".format(
                        key, self.schema.name
                    )
                )
            self._key_index[key] = len(self._rows)
        position = len(self._rows)
        self._rows.append(row)
        self.version += 1
        for columns, index in self._secondary.items():
            index.setdefault(self._index_key(columns, row), []).append(
                position
            )
        return row

    def insert_many(self, rows):
        """Insert several rows; returns the number inserted."""
        count = 0
        for values in rows:
            self.insert(values)
            count += 1
        return count

    def delete_where(self, predicate):
        """Delete rows for which ``predicate(row)`` is true; returns count.

        The write version bumps whether or not rows matched — every DML
        statement invalidates, which can only over-invalidate.
        """
        self.version += 1
        kept = [r for r in self._rows if not predicate(r)]
        removed = len(self._rows) - len(kept)
        if removed:
            self._rows = kept
            self._rebuild_key_index()
        return removed

    def update_where(self, predicate, updater):
        """Apply ``updater(row) -> new_row`` to matching rows."""
        self.version += 1
        changed = 0
        new_rows = []
        for row in self._rows:
            if predicate(row):
                new_rows.append(self.schema.validate_row(updater(row)))
                changed += 1
            else:
                new_rows.append(row)
        if changed:
            self._rows = new_rows
            self._rebuild_key_index()
        return changed

    def _rebuild_key_index(self):
        if self._key_index is not None:
            self._key_index = {}
            key_idx = self.schema.key_indexes()
            for pos, row in enumerate(self._rows):
                key = tuple(row[i] for i in key_idx)
                if key in self._key_index:
                    raise IntegrityError(
                        "update produced duplicate key {!r} in {!r}".format(
                            key, self.schema.name
                        )
                    )
                self._key_index[key] = pos
        for columns in self._secondary:
            self._secondary[columns] = self._build_secondary(columns)

    # -- secondary indexes ------------------------------------------------------

    def create_index(self, columns):
        """Create (or return) a hash index on ``columns``.

        Used by the executor for equality predicates; maintained on
        insert and rebuilt on delete/update.
        """
        key = tuple(columns)
        for name in key:
            self.schema.column_index(name)  # validates
        if key not in self._secondary:
            self._secondary[key] = self._build_secondary(key)
            self.version += 1  # DDL: cached plans over old physics expire
        return key

    def indexes(self):
        """The column tuples of all secondary indexes."""
        return sorted(self._secondary)

    def has_index(self, columns):
        return tuple(columns) in self._secondary

    def _build_secondary(self, columns):
        index = {}
        for position, row in enumerate(self._rows):
            index.setdefault(self._index_key(columns, row), []).append(
                position
            )
        return index

    def _index_key(self, columns, row):
        return tuple(row[self.schema.column_index(c)] for c in columns)

    def index_scan(self, columns, values):
        """Rows whose ``columns`` equal ``values``, via the hash index.

        ``values`` may bind only a *leading prefix* of the index
        columns — an index on ``(a, b)`` answers ``a = 1`` by walking
        its buckets and keeping those whose key starts with ``(1,)``.
        Each returned row counts as scanned; the probe itself counts one
        ``index_lookups`` whether full or partial.
        """
        key = tuple(columns)
        if key not in self._secondary:
            raise SchemaError(
                "no index on {} of table {!r}".format(key, self.schema.name)
            )
        if not values or len(values) > len(key):
            raise SchemaError(
                "index probe on {} needs 1..{} values, got {}".format(
                    key, len(key), len(values)
                )
            )
        if self._stats is not None:
            self._stats.incr(statnames.INDEX_LOOKUPS)
        index = self._secondary[key]
        probe = tuple(values)
        if len(probe) == len(key):
            positions = index.get(probe, ())
        else:
            # Prefix probe: gather matching buckets, restore insertion
            # order so results match a filtered scan's ordering.
            positions = sorted(
                pos
                for bucket_key, bucket in index.items()
                if bucket_key[: len(probe)] == probe
                for pos in bucket
            )
        for position in positions:
            if self._stats is not None:
                self._stats.incr(statnames.ROWS_SCANNED)
            yield self._rows[position]

    # -- access --------------------------------------------------------------

    def scan(self):
        """Generator over all rows; each yielded row counts as scanned."""
        for row in self._rows:
            if self._stats is not None:
                self._stats.incr(statnames.ROWS_SCANNED)
            yield row

    def lookup_key(self, key):
        """Point lookup by primary key tuple; ``None`` when absent."""
        if self._key_index is None:
            raise SchemaError(
                "table {!r} has no primary key".format(self.schema.name)
            )
        pos = self._key_index.get(tuple(key))
        if pos is None:
            return None
        if self._stats is not None:
            self._stats.incr(statnames.ROWS_SCANNED)
        return self._rows[pos]

    def rows_snapshot(self):
        """A copy of all rows, *not* counted as scanned (test helper)."""
        return list(self._rows)

    def __repr__(self):
        return "Table({}, {} rows)".format(self.schema.name, len(self._rows))
