"""AST of the SQL subset.

Statements::

    SELECT item, ...  FROM table [alias], ...  [WHERE pred AND ...]
        [ORDER BY colref, ...]
    CREATE TABLE name (col TYPE, ..., [PRIMARY KEY (col, ...)])
    INSERT INTO name VALUES (lit, ...), ...
    DELETE FROM name [WHERE ...]
    UPDATE name SET col = lit, ... [WHERE ...]
    ANALYZE [name]

Predicates are conjunctions of ``operand op operand`` where operands are
column references or literals; this matches exactly what the mediator's
SQL generator emits (Fig. 22) and what the paper's WHERE grammar allows.
"""

from __future__ import annotations

#: Comparison operators, shared with the XMAS algebra conditions.
COMPARISON_OPS = ("=", "!=", "<>", "<", "<=", ">", ">=")


class ColRef:
    """A (possibly qualified) column reference: ``alias.col`` or ``col``."""

    __slots__ = ("qualifier", "column")

    def __init__(self, column, qualifier=None):
        self.column = column
        self.qualifier = qualifier

    def __repr__(self):
        if self.qualifier:
            return "{}.{}".format(self.qualifier, self.column)
        return self.column

    def __eq__(self, other):
        return (
            isinstance(other, ColRef)
            and self.column == other.column
            and self.qualifier == other.qualifier
        )

    def __hash__(self):
        return hash((self.qualifier, self.column))


class Literal:
    """A constant operand (int, float, or str)."""

    __slots__ = ("value",)

    def __init__(self, value):
        self.value = value

    def __repr__(self):
        if isinstance(self.value, str):
            return "'{}'".format(self.value.replace("'", "''"))
        return repr(self.value)

    def __eq__(self, other):
        return isinstance(other, Literal) and self.value == other.value

    def __hash__(self):
        return hash(("lit", self.value))


class Predicate:
    """``left op right`` with operands being :class:`ColRef`/:class:`Literal`."""

    __slots__ = ("left", "op", "right")

    def __init__(self, left, op, right):
        self.left = left
        self.op = "!=" if op == "<>" else op
        self.right = right

    def __repr__(self):
        return "{!r} {} {!r}".format(self.left, self.op, self.right)


class SelectItem:
    """One projection item: a column ref (or ``*``) with an optional alias."""

    __slots__ = ("ref", "alias")

    STAR = "*"

    def __init__(self, ref, alias=None):
        self.ref = ref  # ColRef or the STAR marker
        self.alias = alias

    @property
    def is_star(self):
        return self.ref == SelectItem.STAR

    def __repr__(self):
        base = "*" if self.is_star else repr(self.ref)
        return base + (" AS " + self.alias if self.alias else "")


class TableRef:
    """A FROM-clause entry: table name plus alias (alias defaults to name)."""

    __slots__ = ("table", "alias")

    def __init__(self, table, alias=None):
        self.table = table
        self.alias = alias or table

    def __repr__(self):
        if self.alias != self.table:
            return "{} {}".format(self.table, self.alias)
        return self.table


class SelectStmt:
    """A parsed SELECT query."""

    def __init__(self, items, tables, predicates=(), order_by=(),
                 distinct=False):
        self.items = list(items)
        self.tables = list(tables)
        self.predicates = list(predicates)
        self.order_by = list(order_by)  # ColRefs
        self.distinct = distinct

    def __repr__(self):
        parts = [
            "SELECT "
            + ("DISTINCT " if self.distinct else "")
            + ", ".join(repr(i) for i in self.items),
            "FROM " + ", ".join(repr(t) for t in self.tables),
        ]
        if self.predicates:
            parts.append(
                "WHERE " + " AND ".join(repr(p) for p in self.predicates)
            )
        if self.order_by:
            parts.append(
                "ORDER BY " + ", ".join(repr(c) for c in self.order_by)
            )
        return " ".join(parts)


class CreateTableStmt:
    def __init__(self, name, columns, primary_key=()):
        self.name = name
        self.columns = list(columns)  # [(name, ColumnType)]
        self.primary_key = tuple(primary_key)


class CreateIndexStmt:
    def __init__(self, name, table, columns):
        self.name = name
        self.table = table
        self.columns = tuple(columns)


class InsertStmt:
    def __init__(self, table, rows):
        self.table = table
        self.rows = [list(r) for r in rows]


class DeleteStmt:
    def __init__(self, table, predicates=()):
        self.table = table
        self.predicates = list(predicates)


class AnalyzeStmt:
    """``ANALYZE [table]`` — collect optimizer statistics.

    ``table`` is ``None`` for the whole-database form.
    """

    def __init__(self, table=None):
        self.table = table

    def __repr__(self):
        return "ANALYZE" + (" " + self.table if self.table else "")


class UpdateStmt:
    def __init__(self, table, assignments, predicates=()):
        self.table = table
        self.assignments = list(assignments)  # [(col_name, Literal)]
        self.predicates = list(predicates)
