"""A small relational database engine, built from scratch.

The paper evaluates MIX over relational sources: the mediator pushes SQL
queries to the source and pulls tuples through cursors ("relational
databases support a basic form of partial result evaluation: the client
issues an SQL query ... and receives a cursor").  This package provides
that substrate:

* typed tables with primary keys (:mod:`repro.relational.table`),
* a SQL subset (SELECT/FROM/WHERE/ORDER BY plus DDL/DML) with a hand
  written lexer/parser (:mod:`repro.relational.parser`),
* a pipelined, generator-based executor with hash joins for equality
  predicates (:mod:`repro.relational.executor`), and
* cursors whose fetches *drive* evaluation, so tuples the mediator never
  asks for are never computed (:mod:`repro.relational.cursor`).

Every row that crosses a cursor is counted in the database's
:class:`~repro.obs.Instrument`, which is what the paper's
"minimum amount of data transferred between the mediator and the
sources" claims are measured against.
"""

from repro.relational.types import ColumnType, INTEGER, REAL, TEXT
from repro.relational.schema import Column, TableSchema
from repro.relational.table import Table
from repro.relational.database import Database
from repro.relational.cursor import Cursor

__all__ = [
    "Column",
    "ColumnType",
    "Cursor",
    "Database",
    "INTEGER",
    "REAL",
    "TEXT",
    "Table",
    "TableSchema",
]
