"""Tokenizer for the SQL subset."""

from __future__ import annotations

from repro.errors import SqlParseError

#: Token kinds.
KEYWORD = "KEYWORD"
IDENT = "IDENT"
NUMBER = "NUMBER"
STRING = "STRING"
SYMBOL = "SYMBOL"
EOF = "EOF"

KEYWORDS = {
    "SELECT", "DISTINCT", "FROM", "WHERE", "AND", "ORDER", "BY", "AS",
    "CREATE", "TABLE", "PRIMARY", "KEY", "INDEX", "ON",
    "INSERT", "INTO", "VALUES",
    "DELETE", "UPDATE", "SET", "NULL", "ASC", "DESC",
    "ANALYZE",
}

_SYMBOLS = ("<=", ">=", "<>", "!=", "=", "<", ">", "(", ")", ",", ".", "*")


class Token:
    __slots__ = ("kind", "text", "value", "pos")

    def __init__(self, kind, text, value=None, pos=0):
        self.kind = kind
        self.text = text
        self.value = value if value is not None else text
        self.pos = pos

    def __repr__(self):
        return "Token({}, {!r})".format(self.kind, self.text)


def tokenize(sql):
    """Tokenize ``sql`` into a list of :class:`Token` ending with EOF."""
    tokens = []
    i = 0
    n = len(sql)
    while i < n:
        ch = sql[i]
        if ch.isspace():
            i += 1
            continue
        if sql.startswith("--", i):
            end = sql.find("\n", i)
            i = n if end < 0 else end + 1
            continue
        if ch == "'":
            j = i + 1
            parts = []
            while True:
                if j >= n:
                    raise SqlParseError("unterminated string literal", sql, i)
                if sql[j] == "'":
                    if j + 1 < n and sql[j + 1] == "'":
                        parts.append("'")
                        j += 2
                        continue
                    break
                parts.append(sql[j])
                j += 1
            tokens.append(Token(STRING, sql[i : j + 1], "".join(parts), i))
            i = j + 1
            continue
        if ch.isdigit() or (
            ch in "+-" and i + 1 < n and sql[i + 1].isdigit()
        ):
            j = i + 1
            is_float = False
            while j < n and (sql[j].isdigit() or sql[j] == "."):
                if sql[j] == ".":
                    # Guard against "a.b" qualified names: a dot not
                    # followed by a digit ends the number.
                    if j + 1 >= n or not sql[j + 1].isdigit():
                        break
                    is_float = True
                j += 1
            text = sql[i:j]
            value = float(text) if is_float else int(text)
            tokens.append(Token(NUMBER, text, value, i))
            i = j
            continue
        matched_symbol = None
        for sym in _SYMBOLS:
            if sql.startswith(sym, i):
                matched_symbol = sym
                break
        if matched_symbol:
            tokens.append(Token(SYMBOL, matched_symbol, pos=i))
            i += len(matched_symbol)
            continue
        if ch.isalpha() or ch == "_":
            j = i + 1
            while j < n and (sql[j].isalnum() or sql[j] == "_"):
                j += 1
            word = sql[i:j]
            if word.upper() in KEYWORDS:
                tokens.append(Token(KEYWORD, word.upper(), pos=i))
            else:
                tokens.append(Token(IDENT, word, pos=i))
            i = j
            continue
        raise SqlParseError("unexpected character {!r}".format(ch), sql, i)
    tokens.append(Token(EOF, "", pos=n))
    return tokens
