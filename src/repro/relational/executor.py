"""Pipelined executor for the SQL subset.

Evaluation is generator-based end to end: nothing past the rows a cursor
has actually fetched is computed (except where semantics force
materialization — the build side of a hash join and ORDER BY sorting).
This mirrors the pipelined, cursor-driven evaluation the paper assumes of
relational sources and is what makes the mediator's navigation-driven
evaluation effective down to the base tables.

Join strategy: predicates are classified into per-alias filters (applied
on the scan), equi-join predicates (hash joins), and residual cross-alias
predicates (filtered after a nested-loop/cross product).  The join order
greedily follows equi-join connectivity from the first FROM entry.
"""

from __future__ import annotations

import operator

from repro.errors import SchemaError, SqlError
from repro.relational import ast

_OPS = {
    "=": operator.eq,
    "!=": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}


def compare(left, op, right):
    """Three-valued-ish comparison: any NULL operand yields False."""
    if left is None or right is None:
        return False
    if isinstance(left, bool) or isinstance(right, bool):
        raise SqlError("boolean values are not comparable")
    numeric = isinstance(left, (int, float)) and isinstance(right, (int, float))
    if not numeric and type(left) is not type(right):
        # Heterogeneous comparison (e.g. '5' vs 5): only (in)equality is
        # defined, and values of different types are never equal.
        if op == "=":
            return False
        if op == "!=":
            return True
        return False
    return _OPS[op](left, right)


class _Binding:
    """Name resolution for one SELECT: alias -> (table, column offsets)."""

    def __init__(self, database, table_refs):
        self.aliases = []
        self.tables = {}
        self.offsets = {}
        self.widths = {}
        offset = 0
        for ref in table_refs:
            if ref.alias in self.tables:
                raise SqlError("duplicate alias {!r}".format(ref.alias))
            table = database.table(ref.table)
            self.aliases.append(ref.alias)
            self.tables[ref.alias] = table
            self.offsets[ref.alias] = offset
            self.widths[ref.alias] = len(table.schema.columns)
            offset += self.widths[ref.alias]
        self.total_width = offset

    def resolve(self, colref):
        """Map a :class:`ColRef` to (alias, flat offset)."""
        if colref.qualifier is not None:
            alias = colref.qualifier
            if alias not in self.tables:
                raise SchemaError("unknown alias {!r}".format(alias))
            idx = self.tables[alias].schema.column_index(colref.column)
            return alias, self.offsets[alias] + idx
        candidates = [
            alias
            for alias in self.aliases
            if self.tables[alias].schema.has_column(colref.column)
        ]
        if not candidates:
            raise SchemaError("unknown column {!r}".format(colref.column))
        if len(candidates) > 1:
            raise SchemaError(
                "ambiguous column {!r} (in {})".format(
                    colref.column, ", ".join(candidates)
                )
            )
        alias = candidates[0]
        idx = self.tables[alias].schema.column_index(colref.column)
        return alias, self.offsets[alias] + idx


class _Operand:
    """A resolved predicate operand: flat-row getter plus metadata used
    for index selection (the column name, or the literal value)."""

    _NO_LITERAL = object()

    def __init__(self, getter, aliases, column=None,
                 literal=_NO_LITERAL):
        self.get = getter
        self.aliases = aliases
        self.column = column
        self._literal = literal

    @property
    def is_literal(self):
        return self._literal is not _Operand._NO_LITERAL

    @property
    def literal(self):
        return self._literal


def _resolve_operand(binding, operand):
    if isinstance(operand, ast.Literal):
        value = operand.value
        return _Operand(
            lambda row: value, frozenset(), literal=value
        )
    alias, pos = binding.resolve(operand)
    return _Operand(
        lambda row, p=pos: row[p], frozenset([alias]),
        column=operand.column,
    )


class _ResolvedPredicate:
    def __init__(self, binding, predicate):
        self.left = _resolve_operand(binding, predicate.left)
        self.op = predicate.op
        self.right = _resolve_operand(binding, predicate.right)
        self.aliases = self.left.aliases | self.right.aliases

    def test(self, row):
        return compare(self.left.get(row), self.op, self.right.get(row))

    def equality_binding(self):
        """``(column, literal)`` when this is ``col = const``, else None."""
        if self.op != "=":
            return None
        if self.left.column is not None and self.right.is_literal:
            return self.left.column, self.right.literal
        if self.right.column is not None and self.left.is_literal:
            return self.right.column, self.left.literal
        return None


def execute_select(database, stmt, obs=None):
    """Evaluate a SELECT; returns ``(column_names, row_generator)``.

    With ``obs`` (an :class:`repro.obs.Instrument`), each produced row is
    counted under a per-table-set counter and attributed to whichever
    navigation span is active when the cursor pulls it.
    """
    binding = _Binding(database, stmt.tables)
    predicates = [_ResolvedPredicate(binding, p) for p in stmt.predicates]
    rows = _join_pipeline(binding, predicates)
    if stmt.order_by:
        keys = [binding.resolve(c)[1] for c in stmt.order_by]
        rows = _sorted_stream(rows, keys)
    names, positions = _projection(binding, stmt.items)
    projected = (tuple(row[p] for p in positions) for row in rows)
    if stmt.distinct:
        projected = _distinct_stream(projected)
    if obs is not None:
        projected = _attributed_rows(projected, obs, stmt)
    return names, projected


def _attributed_rows(rows, obs, stmt):
    """Count rows out of one statement's pipeline, at fetch time."""
    counter = "rows_out:" + ",".join(
        sorted({ref.table for ref in stmt.tables})
    )
    for row in rows:
        obs.incr(counter)
        yield row


def _distinct_stream(rows):
    seen = set()
    for row in rows:
        if row not in seen:
            seen.add(row)
            yield row


def _projection(binding, items):
    names = []
    positions = []
    for item in items:
        if item.is_star:
            for alias in binding.aliases:
                table = binding.tables[alias]
                base = binding.offsets[alias]
                for i, col in enumerate(table.schema.columns):
                    names.append(col.name)
                    positions.append(base + i)
        else:
            alias_name = item.alias or item.ref.column
            __, pos = binding.resolve(item.ref)
            names.append(alias_name)
            positions.append(pos)
    return names, positions


def _sorted_stream(rows, key_positions):
    materialized = list(rows)
    materialized.sort(key=lambda row: tuple(_sort_key(row[p]) for p in key_positions))
    return iter(materialized)


def _sort_key(value):
    """A total order over NULLs, numbers, and strings (NULLs first)."""
    if value is None:
        return (0, 0, "")
    if isinstance(value, (int, float)):
        return (1, value, "")
    return (2, 0, str(value))


def _join_pipeline(binding, predicates):
    """Build the lazily evaluated join tree over all FROM entries."""
    remaining_preds = list(predicates)
    joined_aliases = set()
    stream = None

    def scan_alias(alias):
        """Filtered scan of one alias, padded into the flat row layout.

        Equality predicates covered by a secondary index turn the scan
        into an index probe; remaining predicates filter on top.
        """
        local = [
            p
            for p in remaining_preds
            if p.aliases and p.aliases <= {alias}
        ]
        for p in local:
            remaining_preds.remove(p)
        table = binding.tables[alias]
        base = binding.offsets[alias]
        width = binding.total_width
        index_columns, index_values = _pick_index(table, local)

        def generator():
            if index_columns is not None:
                rows = table.index_scan(index_columns, index_values)
            else:
                rows = table.scan()
            for row in rows:
                flat = [None] * width
                flat[base : base + len(row)] = row
                flat = tuple(flat)
                if all(p.test(flat) for p in local):
                    yield flat

        return generator

    pending = list(binding.aliases)
    while pending:
        alias = _next_alias(pending, joined_aliases, remaining_preds)
        pending.remove(alias)
        if stream is None:
            stream = scan_alias(alias)
            joined_aliases.add(alias)
            continue
        equi = [
            p
            for p in remaining_preds
            if p.op == "="
            and len(p.aliases) == 2
            and alias in p.aliases
            and (p.aliases - {alias}) <= joined_aliases
        ]
        cross = [
            p
            for p in remaining_preds
            if p.op != "="
            and alias in p.aliases
            and (p.aliases - {alias}) <= joined_aliases
            and len(p.aliases) == 2
        ]
        for p in equi + cross:
            remaining_preds.remove(p)
        stream = _hash_join(stream, scan_alias(alias), alias, equi, cross)
        joined_aliases.add(alias)

    if stream is None:
        raise SqlError("SELECT requires at least one table")

    final_preds = list(remaining_preds)

    def finalize():
        for row in stream():
            if all(p.test(row) for p in final_preds):
                yield row

    return finalize()


def _pick_index(table, local_predicates):
    """The most-covering secondary index usable for the local equality
    predicates; returns ``(columns, values)`` or ``(None, None)``."""
    bindings = {}
    for p in local_predicates:
        eq = p.equality_binding()
        if eq is not None:
            bindings.setdefault(eq[0], eq[1])
    best = None
    for columns in table.indexes():
        if all(c in bindings for c in columns):
            if best is None or len(columns) > len(best):
                best = columns
    if best is None:
        return None, None
    return best, [bindings[c] for c in best]


def _next_alias(pending, joined, predicates):
    """Prefer an alias equi-connected to the already-joined set."""
    if not joined:
        return pending[0]
    for alias in pending:
        for p in predicates:
            if (
                p.op == "="
                and alias in p.aliases
                and len(p.aliases) == 2
                and (p.aliases - {alias}) <= joined
            ):
                return alias
    return pending[0]


def _hash_join(probe_stream, build_scan, build_alias, equi_preds, cross_preds):
    """Hash join (or filtered cross product when no equi predicate).

    The build side (the newly joined alias) is materialized into a hash
    table on first pull; the probe side stays pipelined, so cursor pulls
    still drive how much of the *probe* input is consumed.
    """

    def build_key_getters():
        probe_getters = []
        build_getters = []
        for p in equi_preds:
            if p.left.aliases == frozenset([build_alias]):
                build_getters.append(p.left.get)
                probe_getters.append(p.right.get)
            else:
                build_getters.append(p.right.get)
                probe_getters.append(p.left.get)
        return probe_getters, build_getters

    def generator():
        probe_getters, build_getters = build_key_getters()
        if equi_preds:
            buckets = {}
            for row in build_scan():
                key = tuple(g(row) for g in build_getters)
                buckets.setdefault(key, []).append(row)
            for probe_row in probe_stream():
                key = tuple(g(probe_row) for g in probe_getters)
                for build_row in buckets.get(key, ()):
                    merged = _merge(probe_row, build_row)
                    if all(p.test(merged) for p in cross_preds):
                        yield merged
        else:
            build_rows = list(build_scan())
            for probe_row in probe_stream():
                for build_row in build_rows:
                    merged = _merge(probe_row, build_row)
                    if all(p.test(merged) for p in cross_preds):
                        yield merged

    return generator


def _merge(row_a, row_b):
    """Overlay two flat rows (their populated slot ranges are disjoint)."""
    return tuple(
        b if a is None else a for a, b in zip(row_a, row_b)
    )
