"""Pipelined executor for the SQL subset.

Evaluation is generator-based end to end: nothing past the rows a cursor
has actually fetched is computed (except where semantics force
materialization — the build side of a hash join and ORDER BY sorting).
This mirrors the pipelined, cursor-driven evaluation the paper assumes of
relational sources and is what makes the mediator's navigation-driven
evaluation effective down to the base tables.

Join strategy: predicates are classified into per-alias filters (applied
on the scan), equi-join predicates (hash joins), and residual cross-alias
predicates (filtered after a nested-loop/cross product).  With the
cost-based optimizer on (``Database(optimizer=True)``, the default) the
join order, each hash join's build side, and the index-vs-scan choice
come from :class:`repro.optimizer.cost.SelectPlanner`; with it off the
seed's syntactic planning applies — the join order greedily follows
equi-join connectivity from the first FROM entry, the build side is
always the newly joined alias, and only fully bound indexes are used.
"""

from __future__ import annotations

import operator

from repro import stats as statnames
from repro.errors import SchemaError, SqlError
from repro.relational import ast

_OPS = {
    "=": operator.eq,
    "!=": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}


def compare(left, op, right):
    """Three-valued-ish comparison: any NULL operand yields False."""
    if left is None or right is None:
        return False
    if isinstance(left, bool) or isinstance(right, bool):
        raise SqlError("boolean values are not comparable")
    numeric = isinstance(left, (int, float)) and isinstance(right, (int, float))
    if not numeric and type(left) is not type(right):
        # Heterogeneous comparison (e.g. '5' vs 5): only (in)equality is
        # defined, and values of different types are never equal.
        if op == "=":
            return False
        if op == "!=":
            return True
        return False
    return _OPS[op](left, right)


class _Binding:
    """Name resolution for one SELECT: alias -> (table, column offsets)."""

    def __init__(self, database, table_refs):
        self.aliases = []
        self.tables = {}
        self.offsets = {}
        self.widths = {}
        offset = 0
        for ref in table_refs:
            if ref.alias in self.tables:
                raise SqlError("duplicate alias {!r}".format(ref.alias))
            table = database.table(ref.table)
            self.aliases.append(ref.alias)
            self.tables[ref.alias] = table
            self.offsets[ref.alias] = offset
            self.widths[ref.alias] = len(table.schema.columns)
            offset += self.widths[ref.alias]
        self.total_width = offset

    def resolve(self, colref):
        """Map a :class:`ColRef` to (alias, flat offset)."""
        if colref.qualifier is not None:
            alias = colref.qualifier
            if alias not in self.tables:
                raise SchemaError("unknown alias {!r}".format(alias))
            idx = self.tables[alias].schema.column_index(colref.column)
            return alias, self.offsets[alias] + idx
        candidates = [
            alias
            for alias in self.aliases
            if self.tables[alias].schema.has_column(colref.column)
        ]
        if not candidates:
            raise SchemaError("unknown column {!r}".format(colref.column))
        if len(candidates) > 1:
            raise SchemaError(
                "ambiguous column {!r} (in {})".format(
                    colref.column, ", ".join(candidates)
                )
            )
        alias = candidates[0]
        idx = self.tables[alias].schema.column_index(colref.column)
        return alias, self.offsets[alias] + idx


class _Operand:
    """A resolved predicate operand: flat-row getter plus metadata used
    for index selection (the column name, or the literal value)."""

    _NO_LITERAL = object()

    def __init__(self, getter, aliases, column=None,
                 literal=_NO_LITERAL):
        self.get = getter
        self.aliases = aliases
        self.column = column
        self._literal = literal

    @property
    def is_literal(self):
        return self._literal is not _Operand._NO_LITERAL

    @property
    def literal(self):
        return self._literal


def _resolve_operand(binding, operand):
    if isinstance(operand, ast.Literal):
        value = operand.value
        return _Operand(
            lambda row: value, frozenset(), literal=value
        )
    alias, pos = binding.resolve(operand)
    return _Operand(
        lambda row, p=pos: row[p], frozenset([alias]),
        column=operand.column,
    )


class _ResolvedPredicate:
    def __init__(self, binding, predicate):
        self.left = _resolve_operand(binding, predicate.left)
        self.op = predicate.op
        self.right = _resolve_operand(binding, predicate.right)
        self.aliases = self.left.aliases | self.right.aliases

    def test(self, row):
        return compare(self.left.get(row), self.op, self.right.get(row))

    def equality_binding(self):
        """``(column, literal)`` when this is ``col = const``, else None."""
        if self.op != "=":
            return None
        if self.left.column is not None and self.right.is_literal:
            return self.left.column, self.right.literal
        if self.right.column is not None and self.left.is_literal:
            return self.right.column, self.left.literal
        return None


def resolve_select(database, stmt):
    """Name-resolve a SELECT: ``(binding, resolved_predicates)``.

    Shared by execution (below) and by the cost model's
    :func:`repro.optimizer.cost.estimate_select`, which plans the same
    resolved form without running it.
    """
    binding = _Binding(database, stmt.tables)
    predicates = [_ResolvedPredicate(binding, p) for p in stmt.predicates]
    return binding, predicates


def execute_select(database, stmt, obs=None):
    """Evaluate a SELECT; returns ``(column_names, row_generator)``.

    With ``obs`` (an :class:`repro.obs.Instrument`), each produced row is
    counted under a per-table-set counter and attributed to whichever
    navigation span is active when the cursor pulls it.
    """
    binding, predicates = resolve_select(database, stmt)
    planner = None
    if getattr(database, "optimizer", False):
        from repro.optimizer.cost import SelectPlanner

        planner = SelectPlanner(binding, predicates)
    rows = _join_pipeline(
        binding, predicates, planner=planner, stats=database.stats
    )
    if stmt.order_by:
        keys = [binding.resolve(c)[1] for c in stmt.order_by]
        rows = _sorted_stream(rows, keys)
    names, positions = _projection(binding, stmt.items)
    projected = (tuple(row[p] for p in positions) for row in rows)
    if stmt.distinct:
        projected = _distinct_stream(projected)
    if obs is not None:
        projected = _attributed_rows(projected, obs, stmt)
    return names, projected


def _attributed_rows(rows, obs, stmt):
    """Count rows out of one statement's pipeline, at fetch time."""
    counter = "rows_out:" + ",".join(
        sorted({ref.table for ref in stmt.tables})
    )
    for row in rows:
        obs.incr(counter)
        yield row


def _distinct_stream(rows):
    seen = set()
    for row in rows:
        if row not in seen:
            seen.add(row)
            yield row


def _projection(binding, items):
    names = []
    positions = []
    for item in items:
        if item.is_star:
            for alias in binding.aliases:
                table = binding.tables[alias]
                base = binding.offsets[alias]
                for i, col in enumerate(table.schema.columns):
                    names.append(col.name)
                    positions.append(base + i)
        else:
            alias_name = item.alias or item.ref.column
            __, pos = binding.resolve(item.ref)
            names.append(alias_name)
            positions.append(pos)
    return names, positions


def _sorted_stream(rows, key_positions):
    materialized = list(rows)
    materialized.sort(key=lambda row: tuple(_sort_key(row[p]) for p in key_positions))
    return iter(materialized)


def _sort_key(value):
    """A total order over NULLs, numbers, and strings (NULLs first)."""
    if value is None:
        return (0, 0, "")
    if isinstance(value, (int, float)):
        return (1, value, "")
    return (2, 0, str(value))


def _join_pipeline(binding, predicates, planner=None, stats=None):
    """Build the lazily evaluated join tree over all FROM entries.

    With a :class:`~repro.optimizer.cost.SelectPlanner` the join order
    and each step's build side follow its cost-based plan; without one
    (optimizer off) the seed's syntactic order applies.
    """
    remaining_preds = list(predicates)
    joined_aliases = set()
    stream = None

    def scan_alias(alias):
        """Filtered scan of one alias, padded into the flat row layout.

        Equality predicates covered by a secondary index turn the scan
        into an index probe; remaining predicates filter on top.
        """
        local = [
            p
            for p in remaining_preds
            if p.aliases and p.aliases <= {alias}
        ]
        for p in local:
            remaining_preds.remove(p)
        table = binding.tables[alias]
        base = binding.offsets[alias]
        width = binding.total_width
        index_columns, index_values = _pick_index(
            table, local, planner=planner, alias=alias
        )

        def generator():
            if index_columns is not None:
                rows = table.index_scan(index_columns, index_values)
            else:
                rows = table.scan()
            for row in rows:
                flat = [None] * width
                flat[base : base + len(row)] = row
                flat = tuple(flat)
                if all(p.test(flat) for p in local):
                    yield flat

        return generator

    plan_steps = planner.join_order() if planner is not None else None
    step_index = 0
    pending = list(binding.aliases)
    while pending:
        if plan_steps is not None:
            step = plan_steps[step_index]
            step_index += 1
            alias = step.alias
            build_new = step.build_new if step.build_new is not None else True
        else:
            alias = _next_alias(pending, joined_aliases, remaining_preds)
            build_new = True
        pending.remove(alias)
        if stream is None:
            stream = scan_alias(alias)
            joined_aliases.add(alias)
            continue
        equi = [
            p
            for p in remaining_preds
            if p.op == "="
            and len(p.aliases) == 2
            and alias in p.aliases
            and (p.aliases - {alias}) <= joined_aliases
        ]
        cross = [
            p
            for p in remaining_preds
            if p.op != "="
            and alias in p.aliases
            and (p.aliases - {alias}) <= joined_aliases
            and len(p.aliases) == 2
        ]
        for p in equi + cross:
            remaining_preds.remove(p)
        stream = _hash_join(
            stream, scan_alias(alias), alias, equi, cross,
            build_new=build_new, stats=stats,
        )
        joined_aliases.add(alias)

    if stream is None:
        raise SqlError("SELECT requires at least one table")

    final_preds = list(remaining_preds)

    def finalize():
        for row in stream():
            if all(p.test(row) for p in final_preds):
                yield row

    return finalize()


def _pick_index(table, local_predicates, planner=None, alias=None):
    """The secondary index to probe for the local equality predicates;
    returns ``(columns, values)`` or ``(None, None)`` for a full scan.

    An index is usable when a *leading prefix* of its columns is bound
    by equality predicates (an index on ``(a, b)`` answers ``a = 1``).
    With a planner the choice among usable indexes — and whether any
    beats a full scan — is cost-based; without one the seed's syntactic
    rule applies (most-covering fully bound index, else the longest
    usable prefix).
    """
    bindings = {}
    for p in local_predicates:
        eq = p.equality_binding()
        if eq is not None:
            bindings.setdefault(eq[0], eq[1])
    candidates = []
    for columns in table.indexes():
        prefix_len = 0
        while prefix_len < len(columns) and columns[prefix_len] in bindings:
            prefix_len += 1
        if prefix_len:
            candidates.append((columns, prefix_len))
    if planner is not None:
        best = planner.choose_index(alias, candidates)
    else:
        best = None
        for columns, prefix_len in candidates:
            if prefix_len == len(columns):
                if best is None or len(columns) > len(best[0]):
                    best = (columns, prefix_len)
        if best is None:
            for columns, prefix_len in candidates:
                if best is None or prefix_len > best[1]:
                    best = (columns, prefix_len)
    if best is None:
        return None, None
    columns, prefix_len = best
    return columns, [bindings[c] for c in columns[:prefix_len]]


def _next_alias(pending, joined, predicates):
    """Prefer an alias equi-connected to the already-joined set.

    This is the *syntactic* (optimizer-off) order.  The blind
    ``pending[0]`` fallback on a disconnected join graph is kept
    deliberately so ``--no-optimizer`` reproduces the seed's plans
    byte for byte; the cost-based planner's fallback instead prefers
    the smallest alias with a usable index or local predicate
    (:meth:`repro.optimizer.cost.SelectPlanner._next_step`).
    """
    if not joined:
        return pending[0]
    for alias in pending:
        for p in predicates:
            if (
                p.op == "="
                and alias in p.aliases
                and len(p.aliases) == 2
                and (p.aliases - {alias}) <= joined
            ):
                return alias
    return pending[0]


def _hash_join(probe_stream, build_scan, build_alias, equi_preds, cross_preds,
               build_new=True, stats=None):
    """Hash join (or filtered cross product when no equi predicate).

    One side is materialized into a hash table on first pull; the other
    stays pipelined, so cursor pulls still drive how much of it is
    consumed.  ``build_new`` picks the side: ``True`` (the seed
    behavior) materializes the newly joined alias and streams the
    accumulated pipeline; ``False`` — chosen by the cost model when the
    accumulated stream is estimated smaller — materializes the stream
    and pipelines the new alias's scan instead.  Every emitted tuple
    counts one ``join_tuples``, the intermediate-traffic metric the
    E-OPT benchmark compares across join orders.
    """

    def build_key_getters():
        stream_getters = []
        new_getters = []
        for p in equi_preds:
            if p.left.aliases == frozenset([build_alias]):
                new_getters.append(p.left.get)
                stream_getters.append(p.right.get)
            else:
                new_getters.append(p.right.get)
                stream_getters.append(p.left.get)
        return stream_getters, new_getters

    def generator():
        stream_getters, new_getters = build_key_getters()
        if build_new:
            build_side, build_getters = build_scan, new_getters
            probe_side, probe_getters = probe_stream, stream_getters
        else:
            build_side, build_getters = probe_stream, stream_getters
            probe_side, probe_getters = build_scan, new_getters
        if equi_preds:
            buckets = {}
            for row in build_side():
                key = tuple(g(row) for g in build_getters)
                buckets.setdefault(key, []).append(row)
            for probe_row in probe_side():
                key = tuple(g(probe_row) for g in probe_getters)
                for build_row in buckets.get(key, ()):
                    merged = _merge(probe_row, build_row)
                    if all(p.test(merged) for p in cross_preds):
                        if stats is not None:
                            stats.incr(statnames.JOIN_TUPLES)
                        yield merged
        else:
            build_rows = list(build_side())
            for probe_row in probe_side():
                for build_row in build_rows:
                    merged = _merge(probe_row, build_row)
                    if all(p.test(merged) for p in cross_preds):
                        if stats is not None:
                            stats.incr(statnames.JOIN_TUPLES)
                        yield merged

    return generator


def _merge(row_a, row_b):
    """Overlay two flat rows (their populated slot ranges are disjoint)."""
    return tuple(
        b if a is None else a for a, b in zip(row_a, row_b)
    )
