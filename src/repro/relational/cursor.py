"""Cursors: the pull interface between the mediator and a source.

Every row fetched through a cursor is counted under
:data:`repro.stats.TUPLES_SHIPPED` — this is *the* boundary the paper's
efficiency arguments are about ("the transfer of the minimum amount of
data between the mediator and the sources").
"""

from __future__ import annotations

from repro import stats as statnames


class Cursor:
    """A forward-only cursor over a row generator.

    Supports the DB-API-flavoured ``fetchone`` / ``fetchmany`` /
    ``fetchall`` plus plain iteration.  Closing the cursor abandons the
    underlying generator, so unread rows are never computed.
    """

    def __init__(self, column_names, rows, stats=None):
        self.column_names = list(column_names)
        self._rows = iter(rows)
        self._stats = stats
        self._closed = False
        self._pending_exc = None
        self.rows_fetched = 0

    def fetchone(self):
        """The next row, or ``None`` when exhausted."""
        if self._closed:
            return None
        try:
            row = next(self._rows)
        except StopIteration:
            self._closed = True
            return None
        self.rows_fetched += 1
        if self._stats is not None:
            self._stats.incr(statnames.TUPLES_SHIPPED)
        return row

    def fetchmany(self, size):
        """Up to ``size`` rows (possibly fewer at the end)."""
        out = []
        for _ in range(size):
            row = self.fetchone()
            if row is None:
                break
            out.append(row)
        return out

    def fetch_block(self, size):
        """Up to ``size`` rows as one shipped block (block execution).

        Row accounting is unchanged — every row still counts one
        :data:`~repro.stats.TUPLES_SHIPPED` — but each non-empty batch
        additionally counts one :data:`~repro.stats.BLOCKS_SHIPPED`, so
        block-vs-tuple runs ship identical row totals while the block
        counter exposes the batching.

        A row generator that fails mid-batch loses nothing: the rows
        fetched before the failure are returned as a partial block and
        the exception is re-raised on the *next* call, exactly where a
        ``fetchone`` loop would have surfaced it.
        """
        if self._pending_exc is not None:
            exc, self._pending_exc = self._pending_exc, None
            raise exc
        out = []
        for _ in range(size):
            try:
                row = self.fetchone()
            except Exception as exc:
                if not out:
                    raise
                self._pending_exc = exc
                break
            if row is None:
                break
            out.append(row)
        if out and self._stats is not None:
            self._stats.incr(statnames.BLOCKS_SHIPPED)
        return out

    def fetchall(self):
        """All remaining rows."""
        out = []
        while True:
            row = self.fetchone()
            if row is None:
                return out
            out.append(row)

    def close(self):
        """Abandon the cursor; subsequent fetches return ``None``."""
        self._closed = True

    def __iter__(self):
        while True:
            row = self.fetchone()
            if row is None:
                return
            yield row

    def __repr__(self):
        state = "closed" if self._closed else "open"
        return "Cursor({}, {} fetched, {})".format(
            self.column_names, self.rows_fetched, state
        )
