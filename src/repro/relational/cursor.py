"""Cursors: the pull interface between the mediator and a source.

Every row fetched through a cursor is counted under
:data:`repro.stats.TUPLES_SHIPPED` — this is *the* boundary the paper's
efficiency arguments are about ("the transfer of the minimum amount of
data between the mediator and the sources").

Sharded tables add a second cursor shape: :class:`ShardMergeCursor`
gathers k per-shard cursors — each pumped concurrently on a bounded
thread pool by a :class:`ShardStream` — back into one forward-only
stream with the same ``fetchone``/``fetchmany``/``fetch_block``
surface, so the engines cannot tell a scattered statement from a
single-source one.
"""

from __future__ import annotations

import heapq
import threading
from collections import deque

from repro import stats as statnames
from repro.errors import ShardError, SourceError


class Cursor:
    """A forward-only cursor over a row generator.

    Supports the DB-API-flavoured ``fetchone`` / ``fetchmany`` /
    ``fetchall`` plus plain iteration.  Closing the cursor abandons the
    underlying generator, so unread rows are never computed.
    """

    def __init__(self, column_names, rows, stats=None):
        self.column_names = list(column_names)
        self._rows = iter(rows)
        self._stats = stats
        self._closed = False
        self._pending_exc = None
        self.rows_fetched = 0

    def fetchone(self):
        """The next row, or ``None`` when exhausted."""
        if self._closed:
            return None
        try:
            row = next(self._rows)
        except StopIteration:
            self._closed = True
            return None
        self.rows_fetched += 1
        if self._stats is not None:
            self._stats.incr(statnames.TUPLES_SHIPPED)
        return row

    def fetchmany(self, size):
        """Up to ``size`` rows (possibly fewer at the end)."""
        out = []
        for _ in range(size):
            row = self.fetchone()
            if row is None:
                break
            out.append(row)
        return out

    def fetch_block(self, size):
        """Up to ``size`` rows as one shipped block (block execution).

        Row accounting is unchanged — every row still counts one
        :data:`~repro.stats.TUPLES_SHIPPED` — but each non-empty batch
        additionally counts one :data:`~repro.stats.BLOCKS_SHIPPED`, so
        block-vs-tuple runs ship identical row totals while the block
        counter exposes the batching.

        A row generator that fails mid-batch loses nothing: the rows
        fetched before the failure are returned as a partial block and
        the exception is re-raised on the *next* call, exactly where a
        ``fetchone`` loop would have surfaced it.
        """
        if self._pending_exc is not None:
            exc, self._pending_exc = self._pending_exc, None
            raise exc
        out = []
        for _ in range(size):
            try:
                row = self.fetchone()
            except Exception as exc:
                if not out:
                    raise
                self._pending_exc = exc
                break
            if row is None:
                break
            out.append(row)
        if out and self._stats is not None:
            self._stats.incr(statnames.BLOCKS_SHIPPED)
        return out

    def fetchall(self):
        """All remaining rows."""
        out = []
        while True:
            row = self.fetchone()
            if row is None:
                return out
            out.append(row)

    def close(self):
        """Abandon the cursor; subsequent fetches return ``None``."""
        self._closed = True

    def __iter__(self):
        while True:
            row = self.fetchone()
            if row is None:
                return
            yield row

    def __repr__(self):
        state = "closed" if self._closed else "open"
        return "Cursor({}, {} fetched, {})".format(
            self.column_names, self.rows_fetched, state
        )


class ShardStream:
    """One shard member's block feed, pumped on a shared thread pool.

    The stream keeps up to ``depth`` blocks buffered ahead of the
    consumer.  Exactly one fetch task is in flight per stream at any
    moment (the member cursor is touched by one thread at a time); a
    completing task re-submits itself while the buffer has room, so all
    members of a scatter keep fetching while the merge cursor consumes.
    The member cursor itself is *opened* inside the first task, which is
    what parallelizes the per-shard SQL execution, not just the row
    transfer.

    All consumer-side state is guarded by the owning cursor's condition
    variable (shared so an arrival-order gather can wait on "any stream
    has data" with a single wait).
    """

    def __init__(self, index, name, opener, pool, cond, block_size=64,
                 depth=4):
        self.index = index
        self.name = name
        self._opener = opener
        self._pool = pool
        self._cond = cond
        self._block = max(1, int(block_size))
        self._depth = max(1, int(depth))
        self._cursor = None
        self._buffer = deque()     # blocks (lists of rows), oldest first
        self._inflight = False
        self._exhausted = False
        self._error = None         # member failure, delivered once
        self._closed = False
        with cond:
            self._pump()

    # -- producer side (pool threads) ---------------------------------------------

    def _pump(self):
        """Schedule one fetch task (caller holds the condition)."""
        self._inflight = True
        try:
            self._pool.submit(self._fetch_task)
        except RuntimeError:  # pool already shut down
            self._inflight = False

    def _fetch_task(self):
        try:
            if self._cursor is None:
                self._cursor = self._opener()
            fetch = getattr(self._cursor, "fetch_block", None)
            if fetch is not None:
                rows = fetch(self._block)
            else:
                rows = self._cursor.fetchmany(self._block)
        except Exception as exc:  # held for the consumer, incl. SourceError
            with self._cond:
                self._error = exc
                self._inflight = False
                self._cond.notify_all()
            return
        with self._cond:
            if rows:
                self._buffer.append(list(rows))
            else:
                self._exhausted = True
            if (not self._closed and not self._exhausted
                    and len(self._buffer) < self._depth):
                self._pump()
            else:
                self._inflight = False
            self._cond.notify_all()

    # -- consumer side (call holding the condition) --------------------------------

    def has_block(self):
        return bool(self._buffer)

    def finished(self):
        """No data buffered and none coming (failure counts as done
        only after :meth:`take_block` has surfaced it)."""
        return (not self._buffer and not self._inflight
                and self._exhausted and self._error is None)

    def take_block(self, wait=True):
        """The next buffered block; ``[]`` when the stream is over,
        ``None`` when ``wait=False`` and nothing is ready yet.

        A member failure is re-raised exactly once — as a
        :class:`~repro.errors.ShardError` — after every block fetched
        before it has been delivered; afterwards the stream reads as
        exhausted, so the gather continues on the surviving members.
        """
        while True:
            if self._buffer:
                rows = self._buffer.popleft()
                if (not self._inflight and not self._exhausted
                        and self._error is None and not self._closed):
                    self._pump()
                return rows
            if self._error is not None:
                exc, self._error = self._error, None
                self._exhausted = True
                raise self._as_shard_error(exc)
            if self._exhausted or not self._inflight:
                self._exhausted = True
                return []
            if not wait:
                return None
            self._cond.wait()

    def _as_shard_error(self, exc):
        if isinstance(exc, ShardError):
            return exc
        message = "shard {!r} failed mid-gather: {}".format(self.name, exc)
        shard_exc = ShardError(
            message,
            sql=getattr(exc, "sql", None),
            source=self.name,
            shard=self.name,
            index=self.index,
        )
        shard_exc.__cause__ = exc
        return shard_exc

    def close(self):
        with self._cond:
            self._closed = True

    def __repr__(self):
        return "ShardStream({}, {!r}, buffered={})".format(
            self.index, self.name, len(self._buffer)
        )


#: Gather modes of :class:`ShardMergeCursor`.
ARRIVAL = "arrival"    # whichever member has a block ready first
ORDERED = "ordered"    # member index order (range partitioning)
MERGE = "merge"        # k-way merge on ORDER BY key positions


class ShardMergeCursor:
    """Gathers per-shard streams into one cursor.

    * ``arrival`` interleaves blocks as members produce them (hash
      partitioning; no order to preserve);
    * ``ordered`` concatenates members in index order while later
      members prefetch in the background (range partitioning keeps the
      partition-key order);
    * ``merge`` heap-merges member streams already sorted by the pushed
      ``ORDER BY`` (``sort_positions`` are the key's column positions in
      the shard rows), preserving the global sort exactly.

    ``project_width`` trims rows that were widened with auxiliary
    ORDER-BY columns back to the statement's true projection;
    ``distinct`` re-applies DISTINCT globally (per-shard DISTINCT
    cannot see cross-shard duplicates).

    Row/block accounting happens in the *member* cursors (rows still
    ship from the members exactly once); this cursor only counts
    :data:`~repro.stats.SHARDS_FAILED` when a member dies mid-gather.
    A member failure surfaces as a :class:`~repro.errors.ShardError` at
    the stream position where its rows stopped — once — and the cursor
    keeps delivering the surviving members' rows afterwards, which is
    what lets a degrading engine turn a dead shard into one
    ``<mix:error>`` stub plus a partial answer.
    """

    def __init__(self, column_names, streams, gather=ARRIVAL,
                 sort_positions=None, project_width=None, distinct=False,
                 obs=None, on_failure=None):
        self.column_names = list(column_names)
        self._streams = list(streams)
        self._cond = streams[0]._cond if streams else threading.Condition()
        self._gather = MERGE if sort_positions else gather
        self._sort_positions = list(sort_positions or ())
        self._project_width = project_width
        self._distinct = bool(distinct)
        self._seen = set() if distinct else None
        self._obs = obs
        self._on_failure = on_failure
        self._closed = False
        self._pending_exc = None
        self.rows_fetched = 0
        self._block = deque()       # rows ready for delivery
        self._next_ordered = 0      # ordered gather: current member
        self._heap = []             # merge gather
        self._primed = set()        # merge gather: stream indexes seeded
        self._row_buffers = {}      # merge gather: stream -> deque of rows
        self._seq = 0

    # -- failure accounting ---------------------------------------------------------

    def _note_failure(self, exc):
        if self._obs is not None:
            self._obs.incr(statnames.SHARDS_FAILED)
        if self._on_failure is not None:
            self._on_failure(exc)

    # -- gather strategies (fill self._block with raw shard rows) -------------------

    def _fill(self):
        """Buffer at least one raw row, or return with the buffer empty
        when every stream is drained.  Raises ShardError once per failed
        member, at the position its rows stopped."""
        if self._gather == MERGE:
            self._fill_merge()
        elif self._gather == ORDERED:
            self._fill_ordered()
        else:
            self._fill_arrival()

    def _fill_arrival(self):
        with self._cond:
            while not self._block:
                live = [s for s in self._streams if not s.finished()]
                if not live:
                    return
                # Prefer a stream with a block already buffered; only
                # wait when every live stream is still fetching.
                ready = next((s for s in live if s.has_block()), None)
                target = ready if ready is not None else live[0]
                try:
                    rows = target.take_block(wait=ready is not None)
                except ShardError as exc:
                    self._note_failure(exc)
                    raise
                if rows is None:
                    self._cond.wait()
                elif rows:
                    self._block.extend(rows)

    def _fill_ordered(self):
        with self._cond:
            while not self._block:
                if self._next_ordered >= len(self._streams):
                    return
                stream = self._streams[self._next_ordered]
                try:
                    rows = stream.take_block()
                except ShardError as exc:
                    self._note_failure(exc)
                    self._next_ordered += 1
                    raise
                if rows:
                    self._block.extend(rows)
                else:
                    self._next_ordered += 1

    def _fill_merge(self):
        from repro.relational.executor import _sort_key

        with self._cond:
            for stream in self._streams:
                # Seed one row per member; a member that fails here is
                # surfaced and stays marked seeded — the remaining
                # members finish seeding on the next call.
                if stream.index in self._primed:
                    continue
                self._primed.add(stream.index)
                self._push_from(stream, _sort_key)
            if self._heap:
                key, __, row, stream = heapq.heappop(self._heap)
                self._block.append(row)
                self._push_from(stream, _sort_key)

    def _push_from(self, stream, sort_key):
        """Heap-push the stream's next row (call holding the condition).

        A failing member is surfaced immediately, then merging proceeds
        without it — its remaining rows are the lost part of the answer.
        """
        buffer = self._row_buffers.setdefault(stream.index, deque())
        while not buffer:
            try:
                rows = stream.take_block()
            except ShardError as exc:
                self._note_failure(exc)
                raise
            if not rows:
                return
            buffer.extend(rows)
        row = buffer.popleft()
        key = tuple(sort_key(row[p]) for p in self._sort_positions)
        self._seq += 1
        heapq.heappush(self._heap, (key, (stream.index, self._seq), row, stream))

    # -- cursor surface --------------------------------------------------------------

    def fetchone(self):
        """The next gathered row, or ``None`` when every shard is done."""
        if self._closed:
            return None
        while True:
            if not self._block:
                self._fill()
                if not self._block:
                    self._closed = True
                    return None
            row = self._block.popleft()
            if self._project_width is not None:
                row = tuple(row[:self._project_width])
            if self._seen is not None:
                marker = tuple(row)
                if marker in self._seen:
                    continue
                self._seen.add(marker)
            self.rows_fetched += 1
            return row

    def fetchmany(self, size):
        out = []
        for __ in range(size):
            row = self.fetchone()
            if row is None:
                break
            out.append(row)
        return out

    def fetch_block(self, size):
        """Up to ``size`` rows; a shard that dies mid-batch costs
        nothing — the partial batch is returned and its
        :class:`ShardError` re-raised on the next call, matching
        :meth:`Cursor.fetch_block` parking semantics."""
        if self._pending_exc is not None:
            exc, self._pending_exc = self._pending_exc, None
            raise exc
        out = []
        for __ in range(size):
            try:
                row = self.fetchone()
            except SourceError as exc:
                if not out:
                    raise
                self._pending_exc = exc
                break
            if row is None:
                break
            out.append(row)
        return out

    def fetchall(self):
        out = []
        while True:
            row = self.fetchone()
            if row is None:
                return out
            out.append(row)

    def close(self):
        self._closed = True
        for stream in self._streams:
            stream.close()

    def __iter__(self):
        while True:
            row = self.fetchone()
            if row is None:
                return
            yield row

    def __repr__(self):
        state = "closed" if self._closed else "open"
        return "ShardMergeCursor({} shards, {}, {} fetched, {})".format(
            len(self._streams), self._gather, self.rows_fetched, state
        )
