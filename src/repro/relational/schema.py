"""Schema objects: columns and table schemas with primary keys."""

from __future__ import annotations

from repro.errors import SchemaError
from repro.relational.types import ColumnType


class Column:
    """A named, typed column."""

    __slots__ = ("name", "type")

    def __init__(self, name, col_type):
        if not isinstance(col_type, ColumnType):
            raise SchemaError(
                "column {!r} needs a ColumnType, got {!r}".format(name, col_type)
            )
        self.name = name
        self.type = col_type

    def __repr__(self):
        return "{} {}".format(self.name, self.type.name)

    def __eq__(self, other):
        return (
            isinstance(other, Column)
            and self.name == other.name
            and self.type == other.type
        )

    def __hash__(self):
        return hash((self.name, self.type))


class TableSchema:
    """A table's name, ordered columns, and (optional) primary key.

    The primary key matters beyond integrity: the relational wrapper uses
    key values as the XML oids of tuple objects (the paper's ``&XYZ123``),
    which is what decontextualization decodes.
    """

    def __init__(self, name, columns, primary_key=()):
        self.name = name
        self.columns = tuple(columns)
        if not self.columns:
            raise SchemaError("table {!r} needs at least one column".format(name))
        names = [c.name for c in self.columns]
        if len(set(names)) != len(names):
            raise SchemaError("duplicate column names in table {!r}".format(name))
        self._index = {c.name: i for i, c in enumerate(self.columns)}
        self.primary_key = tuple(primary_key)
        for key_col in self.primary_key:
            if key_col not in self._index:
                raise SchemaError(
                    "primary key column {!r} not in table {!r}".format(
                        key_col, name
                    )
                )

    @property
    def column_names(self):
        return [c.name for c in self.columns]

    def has_column(self, name):
        return name in self._index

    def column_index(self, name):
        """Position of column ``name`` (raises :class:`SchemaError`)."""
        try:
            return self._index[name]
        except KeyError:
            raise SchemaError(
                "no column {!r} in table {!r}".format(name, self.name)
            )

    def column(self, name):
        return self.columns[self.column_index(name)]

    def key_indexes(self):
        """Column positions of the primary key (empty if keyless)."""
        return [self._index[k] for k in self.primary_key]

    def validate_row(self, values):
        """Coerce a row to the column types; raises on arity/type errors."""
        if len(values) != len(self.columns):
            raise SchemaError(
                "table {!r} expects {} values, got {}".format(
                    self.name, len(self.columns), len(values)
                )
            )
        return tuple(
            col.type.accept(v) for col, v in zip(self.columns, values)
        )

    def __repr__(self):
        cols = ", ".join(repr(c) for c in self.columns)
        pk = (
            ", PRIMARY KEY ({})".format(", ".join(self.primary_key))
            if self.primary_key
            else ""
        )
        return "TableSchema({} ({}{}))".format(self.name, cols, pk)
