"""Deterministic fault injection for source wrappers.

:class:`FaultInjectingSource` wraps any :class:`~repro.sources.base.
Source` and injects *configured* failures into its pull stream and its
pushed-SQL path.  Nothing here consults the wall clock or unseeded
randomness: explicit faults are keyed on the **position** of the pull in
the document's child stream, probabilistic faults draw from a
``random.Random`` seeded per document, and slow pulls advance an
injected clock — so a fault schedule replays identically run after run.

Fault kinds:

* ``transient`` — raises :class:`TransientSourceError`; fires ``times``
  attempts (default 1), then the pull succeeds — exactly what a retry
  policy should absorb;
* ``permanent`` — raises :class:`SourceError` on every attempt;
* slow pulls — the attempt sleeps on the injected clock before
  delivering, which trips a :class:`~repro.resilience.policy.Timeout`.

An injected raise never consumes the wrapped source's element: the
iterator is *retry-safe* (``retry_safe = True``), so an in-place retry
of ``next()`` finds the stream exactly where it was.  ``skip()`` lets a
degrading caller abandon a permanently poisoned position.
"""

from __future__ import annotations

import random
import zlib

from repro.errors import SourceError, TransientSourceError
from repro.resilience.clock import ManualClock
from repro.sources.base import Source

TRANSIENT = "transient"
PERMANENT = "permanent"

#: Wildcard doc id: the fault applies to every document.
ANY_DOC = "*"

_UNLIMITED = None


class _Fault:
    """One scheduled fault with a remaining-fires budget."""

    __slots__ = ("kind", "delay", "remaining")

    def __init__(self, kind, delay=0.0, times=1):
        self.kind = kind
        self.delay = delay
        self.remaining = times  # None = unlimited (permanent-style)

    def take(self):
        """Consume one firing; returns False when the budget is spent."""
        if self.remaining is _UNLIMITED:
            return True
        if self.remaining <= 0:
            return False
        self.remaining -= 1
        return True


class FaultInjectingSource(Source):
    """A proxy source that injects failures into a wrapped source.

    Example::

        faulty = (
            FaultInjectingSource(wrapper, clock=clock, obs=stats)
            .fail_pull("root2", 1)                  # 2nd pull fails once
            .slow_pull("root1", 0, delay=0.5)       # 1st pull is slow
            .fail_sql(times=1)                      # next SQL fails once
        )

    The consumption state of every fault lives on the *source* (not on
    an iterator), so retries, re-opened iterations, and the eager
    engine's materialization all observe one consistent schedule.
    """

    def __init__(self, inner, clock=None, seed=0, obs=None, name=None):
        self.inner = inner
        self.clock = clock or ManualClock()
        self.seed = seed
        self.name = name or "faulty({})".format(
            getattr(inner, "server_name", None) or type(inner).__name__
        )
        self._obs = obs
        self._pull_faults = {}   # (doc_id, position) -> _Fault
        self._sql_faults = []    # list of (match, _Fault)
        self._mat_faults = {}    # doc_id -> _Fault
        self._pull_rates = {}    # doc_id -> (rate, kind)
        self._rate_decisions = {}  # (doc_id, position) -> bool, memoized
        self.injected = []       # (op, doc_id, position, kind) log

    # -- schedule configuration ------------------------------------------------------

    def fail_pull(self, doc_id, position, kind=TRANSIENT, times=1):
        """Fail the pull of child ``position`` (0-based) of ``doc_id``.

        ``kind="permanent"`` (or ``times=None``) fails every attempt.
        """
        if kind == PERMANENT:
            times = _UNLIMITED
        self._pull_faults[(doc_id, position)] = _Fault(kind, times=times)
        return self

    def slow_pull(self, doc_id, position, delay, times=1):
        """Delay the pull of child ``position`` by ``delay`` clock secs."""
        self._pull_faults[(doc_id, position)] = _Fault(
            "slow", delay=delay, times=times
        )
        return self

    def fail_pulls_randomly(self, doc_id, rate, kind=TRANSIENT):
        """Transiently fail pulls of ``doc_id`` with probability ``rate``.

        Decisions are drawn from ``random.Random`` seeded from
        ``(seed, doc_id)`` via CRC32 — stable across processes and
        interpreter hash randomization — and memoized per position, so a
        position that failed fails exactly once (transient) no matter
        how often it is re-attempted.
        """
        self._pull_rates[doc_id] = (float(rate), kind)
        return self

    def fail_sql(self, kind=TRANSIENT, times=1, match=None):
        """Fail the next ``times`` ``execute_sql`` calls.

        ``match`` restricts the fault to statements containing the
        substring.  ``kind="permanent"`` fails without a budget.
        """
        if kind == PERMANENT:
            times = _UNLIMITED
        self._sql_faults.append((match, _Fault(kind, times=times)))
        return self

    def fail_materialize(self, doc_id, kind=TRANSIENT, times=1):
        """Fail ``materialize_document(doc_id)`` for ``times`` attempts."""
        if kind == PERMANENT:
            times = _UNLIMITED
        self._mat_faults[doc_id] = _Fault(kind, times=times)
        return self

    # -- fault dispatch ----------------------------------------------------------------

    def _record(self, op, doc_id, position, kind):
        self.injected.append((op, doc_id, position, kind))
        if self._obs is not None:
            self._obs.incr("faults_injected")
            self._obs.event(
                "fault", kind, op=op, doc=str(doc_id), position=position
            )

    def _raise(self, kind, op, doc_id, position=None):
        detail = "injected {} fault on {} of {!r}".format(kind, op, doc_id)
        if position is not None:
            detail += " (position {})".format(position)
        if kind == TRANSIENT:
            raise TransientSourceError(
                detail, doc_id=doc_id, source=self.name
            )
        raise SourceError(detail, doc_id=doc_id, source=self.name)

    def _rate_fires(self, doc_id, position):
        rate_entry = self._pull_rates.get(doc_id)
        if rate_entry is None:
            return None
        rate, kind = rate_entry
        key = (doc_id, position)
        if key not in self._rate_decisions:
            rng = random.Random(
                zlib.crc32(str(doc_id).encode("utf-8")) ^ (self.seed or 0)
            )
            # Deterministic per-position draw: advance the stream to the
            # position so earlier positions do not depend on pull order.
            draws = [rng.random() for __ in range(position + 1)]
            self._rate_decisions[key] = draws[position] < rate
        if self._rate_decisions[key]:
            # Transient one-shot: consume the decision.
            self._rate_decisions[key] = False
            return kind
        return None

    def _before_pull(self, doc_id, position):
        """Apply any fault scheduled for this pull; may raise or sleep."""
        fault = self._pull_faults.get((doc_id, position))
        if fault is None:
            fault = self._pull_faults.get((ANY_DOC, position))
        if fault is not None and fault.take():
            if fault.kind == "slow":
                self._record("pull", doc_id, position, "slow")
                self.clock.sleep(fault.delay)
                return
            self._record("pull", doc_id, position, fault.kind)
            self._raise(fault.kind, "pull", doc_id, position)
            return
        rate_kind = self._rate_fires(doc_id, position)
        if rate_kind is not None:
            self._record("pull", doc_id, position, rate_kind)
            self._raise(rate_kind, "pull", doc_id, position)

    # -- Source interface --------------------------------------------------------------

    def document_ids(self):
        return self.inner.document_ids()

    def iter_document_children(self, doc_id):
        return _InjectedIterator(self, doc_id)

    def materialize_document(self, doc_id):
        fault = self._mat_faults.get(doc_id)
        if fault is not None and fault.take():
            self._record("materialize", doc_id, None, fault.kind)
            self._raise(fault.kind, "materialize", doc_id)
        # Route through our own iterator so pull faults also fire on the
        # eager path.
        from repro.xmltree.tree import Node

        root = Node("&{}".format(doc_id), "list")
        for child in self.iter_document_children(doc_id):
            root.append(child)
        return root

    def supports_sql(self):
        return self.inner.supports_sql()

    def execute_sql(self, sql):
        for match, fault in self._sql_faults:
            if match is not None and match not in sql:
                continue
            if fault.take():
                self._record("sql", None, None, fault.kind)
                detail = "injected {} fault on execute_sql".format(
                    fault.kind
                )
                if fault.kind == TRANSIENT:
                    raise TransientSourceError(
                        detail, sql=sql, source=self.name
                    )
                raise SourceError(detail, sql=sql, source=self.name)
        return self.inner.execute_sql(sql)

    def describe_table(self, table_name):
        return self.inner.describe_table(table_name)

    def __getattr__(self, attr):
        # Delegate wrapper-specific surface (server_name,
        # table_for_document, oid_to_key, ...) to the wrapped source.
        return getattr(self.inner, attr)

    def __repr__(self):
        return "FaultInjectingSource({!r}, faults={})".format(
            self.name, len(self._pull_faults) + len(self._sql_faults)
        )


class _InjectedIterator:
    """Pull iterator that applies the schedule *before* touching the
    wrapped stream — an injected raise leaves the stream untouched, so
    ``retry_safe`` callers simply call ``next()`` again."""

    retry_safe = True

    def __init__(self, source, doc_id):
        self._source = source
        self._doc = doc_id
        self._inner = iter(source.inner.iter_document_children(doc_id))
        self._position = 0

    def __iter__(self):
        return self

    def __next__(self):
        self._source._before_pull(self._doc, self._position)
        item = next(self._inner)
        self._position += 1
        return item

    def skip(self):
        """Abandon the current (poisoned) position: discard the wrapped
        element and move on — the degradation path's escape hatch."""
        try:
            next(self._inner)
        except StopIteration:
            pass
        self._position += 1
