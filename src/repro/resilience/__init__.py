"""Fault tolerance for the source layer.

MIX mediates over *remote, autonomous* sources (paper §1, Fig. 1): they
can fail, stall, and come back.  This package keeps one failing pull
from unwinding the whole lazy-mediator stack:

* :class:`FaultInjectingSource` — a proxy that injects deterministic,
  seeded failures (exception on the Nth pull, slow pulls, SQL failures;
  transient or permanent) into any wrapper, for tests and demos;
* :class:`RetryPolicy` / :class:`Timeout` / :class:`CircuitBreaker` —
  the policy layer, all with injectable clocks (no real sleeps);
* :class:`ResilientSource` — the decorator applying those policies
  uniformly to every wrapper, with optional ``<mix:error>``-stub
  degradation (see :mod:`repro.resilience.stub`);
* :class:`ManualClock` — the deterministic clock the whole layer (and
  its test suite) runs on.

See docs/API.md "Fault tolerance" and ``examples/faulty_source.py``.
"""

from repro.resilience.clock import ManualClock, MonotonicClock
from repro.resilience.faults import FaultInjectingSource
from repro.resilience.policy import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    CircuitBreaker,
    RetryPolicy,
    Timeout,
)
from repro.resilience.resilient import (
    DEGRADE,
    RAISE,
    ResilientSource,
    shard_resilience,
)
from repro.resilience.stub import (
    ERROR_LABEL,
    find_error_stubs,
    is_error_stub,
    make_error_stub,
    prefix_has_error_stub,
    strip_error_stubs,
    stub_for_error,
)

__all__ = [
    "CLOSED",
    "CircuitBreaker",
    "DEGRADE",
    "ERROR_LABEL",
    "FaultInjectingSource",
    "HALF_OPEN",
    "ManualClock",
    "MonotonicClock",
    "OPEN",
    "RAISE",
    "ResilientSource",
    "RetryPolicy",
    "Timeout",
    "find_error_stubs",
    "is_error_stub",
    "make_error_stub",
    "prefix_has_error_stub",
    "shard_resilience",
    "strip_error_stubs",
    "stub_for_error",
]
