"""The ``ResilientSource`` decorator: one fault-tolerance skin for every
wrapper.

Because all wrappers (relational, XML file, mediator-as-source — and the
fault injector itself) speak the same :class:`~repro.sources.base.Source`
interface, a single decorator gives the whole source layer retry with
backoff, latency budgets, circuit breaking, and optional partial-result
degradation::

    resilient = ResilientSource(
        wrapper,
        retry=RetryPolicy(attempts=4, sleep=clock.sleep),
        breaker=CircuitBreaker(failure_threshold=3, cooldown=5, clock=clock),
        timeout=Timeout(0.25, clock=clock),
        on_error="degrade",
        obs=stats,
    )
    mediator = Mediator(stats=stats).add_source(resilient)

Pull streams get special care, because a pull is *not* an idempotent
call:

* an injected/transient failure is retried **in place** when the inner
  iterator declares ``retry_safe`` (its raise consumed nothing);
* otherwise the stream is **reopened and fast-forwarded** past the
  elements already delivered (sources iterate deterministically, e.g. a
  re-executed cursor), so a mid-stream failure of a plain generator does
  not silently truncate the stream;
* a pull that exceeds the latency budget raises
  :class:`SourceTimeoutError` but keeps the late value buffered — the
  retry delivers it, so no element is ever lost to a timeout;
* with ``on_error="degrade"``, a pull whose retry budget is exhausted
  yields a ``<mix:error>`` stub (see :mod:`repro.resilience.stub`) and
  the stream continues past the poisoned position.

Everything the decorator does is reported: counters
(``source_retries``, ``source_timeouts``, ``source_failures``,
``breaker_transitions``, ``degraded_results``) and span events
(``retry``, ``breaker``, ``degraded``) land on the instrument passed as
``obs``, and :meth:`ResilientSource.resilience_health` exposes the
cumulative tallies that ``Mediator.explain`` renders per source.
"""

from __future__ import annotations

from repro import stats as statnames
from repro.errors import (
    CircuitOpenError,
    SourceError,
    SourceTimeoutError,
    TransientSourceError,
)
from repro.resilience.stub import stub_for_error
from repro.sources.base import Source

RAISE = "raise"
DEGRADE = "degrade"

_NO_VALUE = object()


class ResilientSource(Source):
    """Wrap ``inner`` with retry/timeout/breaker policies.

    Args:
        inner: any :class:`Source`.
        retry: a :class:`~repro.resilience.policy.RetryPolicy`
            (``None`` = single attempt, no retrying).
        breaker: a :class:`~repro.resilience.policy.CircuitBreaker`
            guarding every call and pull (``None`` = no breaker).
        timeout: a :class:`~repro.resilience.policy.Timeout` budget
            applied per call/pull (``None`` = unbounded).
        on_error: ``"raise"`` propagates exhausted failures;
            ``"degrade"`` substitutes ``<mix:error>`` stubs in pull
            streams and keeps going.
        obs: the :class:`~repro.obs.Instrument` to report to.
        name: printable name used in errors, stubs, and health reports
            (defaults to the inner wrapper's server name or class).
    """

    def __init__(self, inner, retry=None, breaker=None, timeout=None,
                 on_error=RAISE, obs=None, name=None):
        if on_error not in (RAISE, DEGRADE):
            raise ValueError(
                "on_error must be 'raise' or 'degrade', got {!r}".format(
                    on_error
                )
            )
        self.inner = inner
        self.retry = retry
        self.breaker = breaker
        self.timeout = timeout
        self.on_error = on_error
        self.name = name or (
            getattr(inner, "server_name", None) or type(inner).__name__
        )
        self._obs = obs
        self._health = {
            "retries": 0,
            "failures": 0,
            "timeouts": 0,
            "degraded": 0,
            "circuit_rejections": 0,
        }
        if breaker is not None:
            owner = getattr(breaker, "_owner", None)
            if owner is not None and owner is not self:
                raise ValueError(
                    "CircuitBreaker {!r} is already attached to source "
                    "{!r}: a breaker counts one source's consecutive "
                    "failures, and sharing it would let a flapping "
                    "source open the circuit for its siblings — use "
                    "breaker.clone() to give each source its own "
                    "instance".format(breaker.name, owner.name)
                )
            breaker._owner = self
            if breaker.name is None:
                breaker.name = self.name
            breaker.on_transition = self._chain_transition(
                breaker.on_transition
            )

    # -- observability -----------------------------------------------------------------

    def _chain_transition(self, previous):
        def hook(from_state, to_state):
            self._note_breaker(from_state, to_state)
            if previous is not None:
                previous(from_state, to_state)

        return hook

    def _note_breaker(self, from_state, to_state):
        if self._obs is not None:
            self._obs.incr(statnames.BREAKER_TRANSITIONS)
            self._obs.event(
                "breaker",
                "{}->{}".format(from_state, to_state),
                source=self.name,
            )

    def _note_retry(self, attempt, exc, doc_id):
        self._health["retries"] += 1
        if self._obs is not None:
            self._obs.incr(statnames.SOURCE_RETRIES)
            self._obs.event(
                "retry",
                str(exc),
                source=self.name,
                doc=str(doc_id),
                attempt=attempt,
            )

    def _note_failure(self, exc, doc_id):
        self._health["failures"] += 1
        if isinstance(exc, SourceTimeoutError):
            self._health["timeouts"] += 1
            if self._obs is not None:
                self._obs.incr(statnames.SOURCE_TIMEOUTS)
        if isinstance(exc, CircuitOpenError):
            self._health["circuit_rejections"] += 1
        if self._obs is not None:
            self._obs.incr(statnames.SOURCE_FAILURES)

    def _note_degraded(self, exc, doc_id):
        self._health["degraded"] += 1
        if self._obs is not None:
            self._obs.incr(statnames.DEGRADED_RESULTS)
            self._obs.event(
                "degraded", str(exc), source=self.name, doc=str(doc_id)
            )

    def resilience_health(self):
        """Cumulative health of this source, for explain and dashboards.

        Returns a dict of the counters above plus the breaker's current
        state and its transition history as ``"closed->open"`` strings.
        """
        health = dict(self._health)
        health["source"] = self.name
        if self.breaker is not None:
            health["breaker"] = self.breaker.state
            health["breaker_transitions"] = [
                "{}->{}".format(a, b) for a, b in self.breaker.transitions
            ]
        else:
            health["breaker"] = None
            health["breaker_transitions"] = []
        return health

    # -- protected idempotent calls -----------------------------------------------------

    def _attempts(self):
        return self.retry.attempts if self.retry is not None else 1

    def _retryable(self):
        if self.retry is not None:
            return self.retry.retry_on
        return (TransientSourceError,)

    def _call(self, fn, doc_id=None, sql=None, record_success=True):
        """Run an idempotent source call under all three policies.

        ``record_success=False`` is used when merely *opening* a pull
        stream: a generator-backed source runs no code until the first
        pull, so success there would spuriously reset the breaker's
        consecutive-failure count.
        """
        attempts = self._attempts()
        retryable = self._retryable()
        attempt = 0
        while True:
            if self.breaker is not None:
                try:
                    self.breaker.allow(doc_id)
                except CircuitOpenError as exc:
                    self._note_failure(exc, doc_id)
                    raise
            try:
                if self.timeout is not None:
                    result = self.timeout.guard(
                        fn, doc_id=doc_id, source=self.name
                    )
                else:
                    result = fn()
            except retryable as exc:
                self._note_failure(exc, doc_id)
                if self.breaker is not None:
                    self.breaker.record_failure()
                if attempt >= attempts - 1:
                    raise
                attempt += 1
                self._note_retry(attempt, exc, doc_id)
                if self.retry is not None:
                    self.retry.backoff(attempt - 1)
            except SourceError as exc:
                self._note_failure(exc, doc_id)
                if self.breaker is not None:
                    self.breaker.record_failure()
                raise
            else:
                if record_success and self.breaker is not None:
                    self.breaker.record_success()
                return result

    # -- Source interface --------------------------------------------------------------

    def document_ids(self):
        return self._call(self.inner.document_ids)

    def iter_document_children(self, doc_id):
        return _ResilientIterator(self, doc_id)

    def materialize_document(self, doc_id):
        if self.on_error == DEGRADE:
            # Build through our own pull stream so per-pull retry and
            # stub substitution apply uniformly to the eager path.  The
            # rebuilt root is ``list``-labeled, matching the wrappers'
            # own materialization convention.
            from repro.xmltree.tree import Node

            root = Node("&{}".format(doc_id), "list")
            for child in self.iter_document_children(doc_id):
                root.append(child)
            return root
        return self._call(
            lambda: self.inner.materialize_document(doc_id), doc_id=doc_id
        )

    def supports_sql(self):
        return self.inner.supports_sql()

    def execute_sql(self, sql):
        return self._call(lambda: self.inner.execute_sql(sql), sql=sql)

    def describe_table(self, table_name):
        return self._call(lambda: self.inner.describe_table(table_name))

    def __getattr__(self, attr):
        # Wrapper-specific planning surface (server_name,
        # table_for_document, label_for_document, oid_to_key,
        # invalidate, ...) passes through untouched.
        return getattr(self.inner, attr)

    def __repr__(self):
        return "ResilientSource({!r}, retry={}, breaker={}, on_error={})".format(
            self.name, self.retry, self.breaker, self.on_error
        )


def shard_resilience(members, retry=None, breaker=None, timeout=None,
                     on_error=DEGRADE, obs=None, name=None):
    """Wrap each shard member in its own :class:`ResilientSource`.

    ``retry``/``breaker``/``timeout`` act as *templates*: every member
    receives an independent :meth:`clone` — most importantly its own
    :class:`~repro.resilience.policy.CircuitBreaker`, so one flapping
    member trips only its own circuit while its siblings keep serving
    (``ResilientSource`` enforces this by rejecting an already-attached
    breaker outright).

    Members are named ``<name>[<index>]`` (``name`` defaults to each
    member's own server name), which is how their failures read in
    stubs, health reports, and the EXPLAIN resilience footer.

    Returns the wrapped member list, ready to hand to
    :class:`~repro.sources.shard.ShardedSource`.
    """
    wrapped = []
    for index, member in enumerate(members):
        base = name or (
            getattr(member, "server_name", None) or type(member).__name__
        )
        member_name = "{}[{}]".format(base, index)
        wrapped.append(
            ResilientSource(
                member,
                retry=retry.clone() if retry is not None else None,
                breaker=(
                    breaker.clone(name=member_name)
                    if breaker is not None else None
                ),
                timeout=timeout.clone() if timeout is not None else None,
                on_error=on_error,
                obs=obs,
                name=member_name,
            )
        )
    return wrapped


class _ResilientIterator:
    """The policy-protected pull stream over one document."""

    retry_safe = True

    def __init__(self, source, doc_id):
        self._rs = source
        self._doc = doc_id
        self._consumed = 0      # elements pulled from the wrapped stream
        self._pending = _NO_VALUE   # late value from a timed-out pull
        self._done = False
        self._failed_open = None    # opening error held for degradation
        # Hoisted off the per-pull hot path.
        self._attempts = source._attempts()
        self._retryable = source._retryable()
        try:
            self._inner = iter(
                source._call(
                    lambda: source.inner.iter_document_children(doc_id),
                    doc_id=doc_id,
                    record_success=False,
                )
            )
        except SourceError as exc:
            if source.on_error != DEGRADE:
                raise
            # The stream could not even open (e.g. the breaker is
            # already open): the first pull degrades to a single stub.
            self._failed_open = exc
            self._inner = iter(())

    def __iter__(self):
        return self

    def __next__(self):
        rs = self._rs
        if self._done:
            raise StopIteration
        if self._failed_open is not None:
            exc, self._failed_open = self._failed_open, None
            return self._give_up(exc, terminal=True)
        attempt = 0
        attempts = self._attempts
        retryable = self._retryable
        while True:
            if self._pending is not _NO_VALUE:
                item = self._pending
                self._pending = _NO_VALUE
                if rs.breaker is not None:
                    rs.breaker.record_success()
                return item
            try:
                if rs.breaker is not None:
                    rs.breaker.allow(self._doc)
            except CircuitOpenError as exc:
                rs._note_failure(exc, self._doc)
                # An open breaker means the source is out of service:
                # degrade marks the remainder of the stream with one
                # stub; raising is the default.
                return self._give_up(exc, terminal=True)
            try:
                item = self._pull()
            except StopIteration:
                self._done = True
                raise
            except retryable as exc:
                rs._note_failure(exc, self._doc)
                if rs.breaker is not None:
                    rs.breaker.record_failure()
                if attempt < attempts - 1:
                    attempt += 1
                    rs._note_retry(attempt, exc, self._doc)
                    if rs.retry is not None:
                        rs.retry.backoff(attempt - 1)
                    self._recover()
                    continue
                return self._give_up(exc)
            except SourceError as exc:
                rs._note_failure(exc, self._doc)
                if rs.breaker is not None:
                    rs.breaker.record_failure()
                return self._give_up(exc)
            else:
                if rs.breaker is not None:
                    rs.breaker.record_success()
                return item

    def _pull(self):
        """One attempt: pull, count consumption, enforce the budget."""
        rs = self._rs
        if rs.timeout is None:
            item = next(self._inner)
            self._consumed += 1
            return item
        timeout = rs.timeout
        clock = timeout.clock
        start = clock.time()
        item = next(self._inner)
        elapsed = clock.time() - start
        self._consumed += 1
        if elapsed > timeout.limit:
            # The value arrived late; keep it so the retry (or the next
            # pull, under degradation) delivers it instead of losing it.
            self._pending = item
            timeout.check(elapsed, doc_id=self._doc, source=rs.name)
        return item

    def _recover(self):
        """Prepare the stream for another attempt at the failed pull."""
        if getattr(self._inner, "retry_safe", False):
            return  # the raise consumed nothing; just pull again
        self._reopen(skip=self._consumed)

    def _reopen(self, skip):
        """Restart the wrapped stream and fast-forward ``skip`` items."""
        rs = self._rs
        self._inner = iter(
            rs.inner.iter_document_children(self._doc)
        )
        self._consumed = 0
        for __ in range(skip):
            try:
                next(self._inner)
            except StopIteration:
                self._done = True
                return
            self._consumed += 1

    def _give_up(self, exc, terminal=False):
        """Retry budget exhausted: degrade to a stub or propagate.

        Transient failures get *insertion* semantics: the poisoned
        position is left to be re-attempted by the next pull, so the
        real element follows its stub and stripping stubs recovers the
        fault-free stream exactly.  Permanent failures *abandon* the
        position — re-attempting would fail forever.
        """
        rs = self._rs
        if rs.on_error != DEGRADE:
            raise exc
        rs._note_degraded(exc, self._doc)
        transient = isinstance(exc, TransientSourceError)
        if terminal:
            # Breaker open (or equally terminal): one stub marks the
            # unavailable remainder, then the stream ends.
            self._done = True
        elif self._pending is not _NO_VALUE:
            # A timed-out pull already consumed the position; its late
            # value is buffered and will follow the stub.
            pass
        elif getattr(self._inner, "retry_safe", False):
            if not transient:
                skip = getattr(self._inner, "skip", None)
                if skip is not None:
                    skip()  # abandon the poisoned position
                else:
                    # No way to move past the position: end the stream
                    # after the stub rather than looping on it.
                    self._done = True
        elif transient:
            # A dead generator: restart it and re-attempt the position.
            self._safe_reopen(skip=self._consumed)
        else:
            self._safe_reopen(skip=self._consumed + 1)
        return stub_for_error(exc, source=rs.name)

    def _safe_reopen(self, skip):
        """Reopen for degradation; a stream that cannot be fast-forwarded
        past the poisoned position (the fault re-fires during replay)
        ends after the stub instead of leaking the error."""
        try:
            self._reopen(skip=skip)
        except SourceError:
            self._done = True

    def __repr__(self):
        return "_ResilientIterator({!r}, consumed={})".format(
            self._doc, self._consumed
        )
