"""Resilience policies: retry with backoff, latency budgets, breakers.

All three policies are plain objects with injectable clocks (see
:mod:`repro.resilience.clock`), so the full suite — including every
backoff schedule and breaker cooldown — runs without a single real
sleep.  :class:`~repro.resilience.resilient.ResilientSource` composes
them around any :class:`~repro.sources.base.Source`.
"""

from __future__ import annotations

from repro.errors import (
    CircuitOpenError,
    SourceTimeoutError,
    TransientSourceError,
)
from repro.resilience.clock import MonotonicClock


class RetryPolicy:
    """Capped exponential backoff over a classified exception set.

    Args:
        attempts: total tries, including the first (``1`` disables
            retrying).
        base_delay: seconds to wait before the first retry.
        multiplier: backoff growth factor per retry.
        max_delay: cap on any single delay.
        retry_on: exception classes considered transient; everything
            else propagates immediately.
        sleep: the wait function (inject ``ManualClock().sleep`` in
            tests); defaults to a real monotonic clock.

    ``delays()`` exposes the deterministic schedule so tests can assert
    it; :meth:`call` is the convenience loop for one-shot idempotent
    calls (pull streams implement their own loop because a failed pull
    must not restart the stream).
    """

    def __init__(self, attempts=3, base_delay=0.05, multiplier=2.0,
                 max_delay=2.0, retry_on=(TransientSourceError,),
                 sleep=None):
        if attempts < 1:
            raise ValueError("attempts must be >= 1")
        self.attempts = int(attempts)
        self.base_delay = float(base_delay)
        self.multiplier = float(multiplier)
        self.max_delay = float(max_delay)
        self.retry_on = tuple(retry_on)
        self._sleep = sleep if sleep is not None else MonotonicClock().sleep

    def delays(self):
        """The backoff schedule: one delay per retry, in order."""
        out = []
        delay = self.base_delay
        for __ in range(self.attempts - 1):
            out.append(min(delay, self.max_delay))
            delay *= self.multiplier
        return out

    def is_retryable(self, exc):
        return isinstance(exc, self.retry_on)

    def backoff(self, retry_index):
        """Sleep for the ``retry_index``-th (0-based) delay."""
        delay = min(
            self.base_delay * (self.multiplier ** retry_index),
            self.max_delay,
        )
        self._sleep(delay)
        return delay

    def call(self, fn, on_retry=None):
        """Run ``fn()`` with retries; returns its result.

        ``on_retry(attempt, exc, delay)`` is invoked after each failed
        attempt that will be retried (for observability hooks).
        """
        for attempt in range(self.attempts):
            try:
                return fn()
            except self.retry_on as exc:
                if attempt == self.attempts - 1:
                    raise
                delay = self.backoff(attempt)
                if on_retry is not None:
                    on_retry(attempt + 1, exc, delay)

    def clone(self):
        """An independent policy with the same schedule (stateless, so
        this is configuration copying — provided for symmetry with
        :meth:`CircuitBreaker.clone` in per-shard composition)."""
        return RetryPolicy(
            attempts=self.attempts,
            base_delay=self.base_delay,
            multiplier=self.multiplier,
            max_delay=self.max_delay,
            retry_on=self.retry_on,
            sleep=self._sleep,
        )

    def __repr__(self):
        return "RetryPolicy(attempts={}, base={}, x{}, cap={})".format(
            self.attempts, self.base_delay, self.multiplier, self.max_delay
        )


class Timeout:
    """A per-call latency budget, checked cooperatively.

    Python generators cannot be preempted, so the budget is enforced
    *post hoc*: the call runs, its duration is measured on the injected
    clock, and a :class:`SourceTimeoutError` is raised when the budget
    was exceeded.  Results of timed-out idempotent calls are discarded;
    timed-out *pulls* keep their late value buffered (see
    ``ResilientSource``) so no stream element is lost.
    """

    def __init__(self, limit, clock=None):
        if limit <= 0:
            raise ValueError("timeout limit must be positive")
        self.limit = float(limit)
        self.clock = clock or MonotonicClock()

    def measure(self, fn):
        """``(result, elapsed)`` of ``fn()`` on this timeout's clock."""
        start = self.clock.time()
        result = fn()
        return result, self.clock.time() - start

    def check(self, elapsed, doc_id=None, source=None):
        """Raise :class:`SourceTimeoutError` when ``elapsed`` > limit."""
        if elapsed > self.limit:
            raise SourceTimeoutError(
                "source call exceeded its {:.3f}s budget "
                "({:.3f}s elapsed)".format(self.limit, elapsed),
                doc_id=doc_id,
                source=source,
                limit=self.limit,
                elapsed=elapsed,
            )

    def guard(self, fn, doc_id=None, source=None):
        """Run ``fn`` and enforce the budget (idempotent calls only)."""
        result, elapsed = self.measure(fn)
        self.check(elapsed, doc_id=doc_id, source=source)
        return result

    def clone(self):
        """An independent budget with the same limit and clock."""
        return Timeout(self.limit, clock=self.clock)

    def __repr__(self):
        return "Timeout({}s)".format(self.limit)


#: Circuit breaker states.
CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


class CircuitBreaker:
    """A per-source breaker with the classic three-state protocol.

    * **closed** — requests flow; ``failure_threshold`` *consecutive*
      failures trip the breaker;
    * **open** — requests fail fast with :class:`CircuitOpenError`
      (the source is not touched) until ``cooldown`` clock seconds pass;
    * **half-open** — one probe request is admitted; success closes the
      breaker, failure re-opens it and restarts the cooldown.

    The clock is injectable, so the open→half-open transition is driven
    by ``clock.advance`` in tests, never by real waiting.  Every
    transition is recorded in :attr:`transitions` and reported through
    the optional ``on_transition`` callback (the hook
    :class:`ResilientSource` uses to emit obs events).
    """

    def __init__(self, failure_threshold=5, cooldown=30.0, clock=None,
                 name=None, on_transition=None):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        self.failure_threshold = int(failure_threshold)
        self.cooldown = float(cooldown)
        self.clock = clock or MonotonicClock()
        self.name = name
        self.on_transition = on_transition
        self._state = CLOSED
        self._consecutive_failures = 0
        self._opened_at = None
        self.transitions = []  # list of (from_state, to_state)
        #: The ResilientSource this breaker is attached to, if any.  A
        #: breaker counts *one* source's consecutive failures; attaching
        #: it to a second source would let that source's faults open the
        #: circuit for the first (and vice versa), so ResilientSource
        #: refuses shared breakers — see :meth:`clone`.
        self._owner = None

    @property
    def state(self):
        """The current state, applying any due open→half-open move."""
        if self._state == OPEN and self._cooldown_remaining() <= 0:
            self._transition(HALF_OPEN)
        return self._state

    def _cooldown_remaining(self):
        return self.cooldown - (self.clock.time() - self._opened_at)

    def _transition(self, to_state):
        from_state = self._state
        if from_state == to_state:
            return
        self._state = to_state
        if to_state == OPEN:
            self._opened_at = self.clock.time()
        self.transitions.append((from_state, to_state))
        if self.on_transition is not None:
            self.on_transition(from_state, to_state)

    def allow(self, doc_id=None):
        """Admit a request or raise :class:`CircuitOpenError`."""
        if self.state == OPEN:
            raise CircuitOpenError(
                "circuit breaker for {!r} is open "
                "({:.3f}s until half-open)".format(
                    self.name, max(0.0, self._cooldown_remaining())
                ),
                doc_id=doc_id,
                source=self.name,
                retry_after=max(0.0, self._cooldown_remaining()),
            )

    def record_success(self):
        self._consecutive_failures = 0
        if self._state == HALF_OPEN:
            self._transition(CLOSED)

    def record_failure(self):
        if self._state == HALF_OPEN:
            # The probe failed: re-open and restart the cooldown.
            self._consecutive_failures = self.failure_threshold
            self._transition(OPEN)
            return
        self._consecutive_failures += 1
        if (self._state == CLOSED
                and self._consecutive_failures >= self.failure_threshold):
            self._transition(OPEN)

    def clone(self, name=None):
        """A fresh, unattached breaker with this breaker's configuration.

        State (failure counts, open/half-open, transition history) and
        the ``on_transition`` hook are *not* carried over: the clone
        belongs to a different source, and the hook is rebound when a
        :class:`~repro.resilience.ResilientSource` attaches it.  This is
        how per-shard composition hands every member its own circuit —
        one flapping shard can then never open the breaker for its
        siblings.
        """
        return CircuitBreaker(
            failure_threshold=self.failure_threshold,
            cooldown=self.cooldown,
            clock=self.clock,
            name=name,
        )

    def __repr__(self):
        return "CircuitBreaker({}, state={}, failures={})".format(
            self.name, self._state, self._consecutive_failures
        )
