"""The ``<mix:error>`` degradation stub and its contract.

When a mediator runs with ``on_source_error="degrade"`` (or a
:class:`~repro.resilience.resilient.ResilientSource` is built with
``on_error="degrade"``), a source failure that survives the retry budget
does not unwind the navigation stack.  Instead a *stub element* marks the
spot where data is missing::

    <mix:error>
      <source>root2</source>
      <reason>injected transient fault</reason>
    </mix:error>

The stub contract (see docs/API.md, "Fault tolerance"):

* the stub's label is exactly :data:`ERROR_LABEL`, and its children are
  ``source`` and ``reason`` leaf-carrying elements (the data model has
  no attributes — attributes lift to child elements, as everywhere);
* path navigation (``getD``) treats a stub as *poison*: any path applied
  to a stub yields the stub itself, so the marker survives arbitrary
  navigation chains and lands in the result tree;
* conditions involving a stub are false (a stub never atomizes), so
  ``WHERE``-filtered and join-matched stubs drop out silently — the same
  convention SQL uses for NULL;
* for transient faults the stub is *inserted*: the element whose pull
  failed is still delivered by the next pull, so stripping the stubs
  from a degraded result yields exactly the fault-free result.
"""

from __future__ import annotations

from repro.xmltree.tree import Node, OidGenerator

#: Label of the degradation stub element.
ERROR_LABEL = "mix:error"

_STUB_OIDS = OidGenerator("err")


def make_error_stub(source=None, reason=None, oids=None):
    """Build a ``<mix:error>`` stub element.

    Args:
        source: the name/doc id of the source that failed.
        reason: a human-readable failure description (usually the
            exception message).
        oids: the :class:`OidGenerator` to draw vertex ids from; a
            module-level generator is used when omitted, so stubs are
            deterministic within a process.
    """
    gen = oids or _STUB_OIDS
    stub = Node(gen.fresh(), ERROR_LABEL)
    if source is not None:
        field = Node(gen.fresh(), "source")
        field.append(Node(gen.fresh(), str(source)))
        stub.append(field)
    if reason is not None:
        field = Node(gen.fresh(), "reason")
        field.append(Node(gen.fresh(), str(reason)))
        stub.append(field)
    return stub


def stub_for_error(exc, source=None, oids=None):
    """A stub describing ``exc`` (uses the error's own source when set)."""
    name = source
    if name is None:
        name = getattr(exc, "source", None) or getattr(exc, "doc_id", None)
    return make_error_stub(source=name, reason=str(exc), oids=oids)


def is_error_stub(node):
    """Whether ``node`` is a degradation stub."""
    return isinstance(node, Node) and node.label == ERROR_LABEL


def find_error_stubs(root):
    """All stub nodes in the tree rooted at ``root`` (forces it)."""
    return [n for n in root.iter_subtree() if is_error_stub(n)]


def strip_error_stubs(root):
    """A copy of the tree with every ``<mix:error>`` subtree removed.

    The root itself is returned unchanged if it is a stub (a client that
    degraded all the way to the root keeps the marker).
    """
    if is_error_stub(root) or root.is_leaf:
        return root
    kept = [
        strip_error_stubs(c) for c in root.children if not is_error_stub(c)
    ]
    return Node(root.oid, root.label, kept)
