"""The ``<mix:error>`` degradation stub and its contract.

When a mediator runs with ``on_source_error="degrade"`` (or a
:class:`~repro.resilience.resilient.ResilientSource` is built with
``on_error="degrade"``), a source failure that survives the retry budget
does not unwind the navigation stack.  Instead a *stub element* marks the
spot where data is missing::

    <mix:error>
      <source>root2</source>
      <reason>injected transient fault</reason>
    </mix:error>

The stub contract (see docs/API.md, "Fault tolerance"):

* the stub's label is exactly :data:`ERROR_LABEL`, and its children are
  ``source`` and ``reason`` leaf-carrying elements (the data model has
  no attributes — attributes lift to child elements, as everywhere);
* path navigation (``getD``) treats a stub as *poison*: any path applied
  to a stub yields the stub itself, so the marker survives arbitrary
  navigation chains and lands in the result tree;
* conditions involving a stub are false (a stub never atomizes), so
  ``WHERE``-filtered and join-matched stubs drop out silently — the same
  convention SQL uses for NULL;
* for transient faults the stub is *inserted*: the element whose pull
  failed is still delivered by the next pull, so stripping the stubs
  from a degraded result yields exactly the fault-free result.
"""

from __future__ import annotations

from repro.xmltree.tree import Node, OidGenerator

#: Label of the degradation stub element.
ERROR_LABEL = "mix:error"

_STUB_OIDS = OidGenerator("err")


def make_error_stub(source=None, reason=None, oids=None):
    """Build a ``<mix:error>`` stub element.

    Args:
        source: the name/doc id of the source that failed.
        reason: a human-readable failure description (usually the
            exception message).
        oids: the :class:`OidGenerator` to draw vertex ids from; a
            module-level generator is used when omitted, so stubs are
            deterministic within a process.
    """
    gen = oids or _STUB_OIDS
    stub = Node(gen.fresh(), ERROR_LABEL)
    if source is not None:
        field = Node(gen.fresh(), "source")
        field.append(Node(gen.fresh(), str(source)))
        stub.append(field)
    if reason is not None:
        field = Node(gen.fresh(), "reason")
        field.append(Node(gen.fresh(), str(reason)))
        stub.append(field)
    return stub


def stub_for_error(exc, source=None, oids=None):
    """A stub describing ``exc`` (uses the error's own source when set)."""
    name = source
    if name is None:
        name = getattr(exc, "source", None) or getattr(exc, "doc_id", None)
    return make_error_stub(source=name, reason=str(exc), oids=oids)


def is_error_stub(node):
    """Whether ``node`` is a degradation stub."""
    return isinstance(node, Node) and node.label == ERROR_LABEL


def find_error_stubs(root):
    """All stub nodes in the tree rooted at ``root`` (forces it)."""
    return [n for n in root.iter_subtree() if is_error_stub(n)]


def prefix_has_error_stub(root):
    """Whether the *already materialized* part of ``root`` is poisoned:
    a ``<mix:error>`` stub, or a node whose lazy tail raised (broken).

    Walks only children that navigation has forced so far — nothing is
    pulled, so this is safe on live lazy trees.  The navigation memo
    uses it as a poison check: a degraded or failure-truncated prefix
    disqualifies a cached result even if the damage happened after the
    entry was stored.
    """
    stack = [root]
    while stack:
        node = stack.pop()
        if is_error_stub(node) or getattr(node, "is_broken", False):
            return True
        stack.extend(node.materialized_children())
    return False


class PrefixPoisonWatch:
    """Incremental :func:`prefix_has_error_stub` over a growing tree.

    The navigation memo re-checks an entry's tree on every hit, and a
    full re-scan is O(answer size) — it dominates a warm repeat.  But a
    clean prefix stays clean: labels never change, and new nodes can
    only appear past a node whose lazy tail was still open.  So a clean
    scan records that *frontier* — ``(node, children_seen)`` for every
    node not yet fully materialized — and the next scan resumes there,
    visiting only growth since last time.  Once the tree is fully
    materialized the frontier is empty and re-checks cost nothing.

    Poison latches: a tree once poisoned never becomes clean again (a
    broken tail never resumes; a stub never changes label).
    """

    __slots__ = ("_root", "_frontier", "_poisoned")

    def __init__(self, root):
        self._root = root
        self._frontier = None          # None = never scanned
        self._poisoned = False

    def _scan_subtree(self, node, frontier):
        """Full scan of a first-seen subtree's materialized prefix;
        collects open-tailed nodes into ``frontier``."""
        stack = [node]
        while stack:
            current = stack.pop()
            if is_error_stub(current) or getattr(
                current, "is_broken", False
            ):
                return True
            kids = current.materialized_children()
            if not getattr(current, "fully_materialized", True):
                frontier.append((current, len(kids)))
            stack.extend(kids)
        return False

    def poisoned(self):
        """Whether the materialized prefix is poisoned (never forces)."""
        if self._poisoned:
            return True
        frontier = []
        if self._frontier is None:
            self._poisoned = self._scan_subtree(self._root, frontier)
        else:
            for node, seen in self._frontier:
                if getattr(node, "is_broken", False):
                    self._poisoned = True
                    break
                kids = node.materialized_children()
                for child in kids[seen:]:
                    if self._scan_subtree(child, frontier):
                        self._poisoned = True
                        break
                if self._poisoned:
                    break
                if not getattr(node, "fully_materialized", True):
                    frontier.append((node, len(kids)))
        if not self._poisoned:
            self._frontier = frontier
        return self._poisoned


def strip_error_stubs(root):
    """A copy of the tree with every ``<mix:error>`` subtree removed.

    The root itself is returned unchanged if it is a stub (a client that
    degraded all the way to the root keeps the marker).
    """
    if is_error_stub(root) or root.is_leaf:
        return root
    kept = [
        strip_error_stubs(c) for c in root.children if not is_error_stub(c)
    ]
    return Node(root.oid, root.label, kept)
