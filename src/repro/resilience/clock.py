"""Injectable time sources for the resilience layer.

Every component that measures or waits (:class:`~repro.resilience.policy.
RetryPolicy` backoff, :class:`~repro.resilience.policy.Timeout` budgets,
:class:`~repro.resilience.policy.CircuitBreaker` cooldowns, and the fault
injector's slow pulls) takes a clock object instead of calling
:mod:`time` directly.  Tests and the fault injector share one
:class:`ManualClock`, so the whole suite runs with *no real sleeps* and
fully deterministic timing.

A clock exposes two methods:

* ``time()`` — a monotonically nondecreasing float of seconds;
* ``sleep(seconds)`` — block (or pretend to) for ``seconds``.
"""

from __future__ import annotations

import time


class MonotonicClock:  # pragma: no cover — the suite never really sleeps
    """The production clock: :func:`time.monotonic` + :func:`time.sleep`."""

    def time(self):
        return time.monotonic()

    def sleep(self, seconds):
        if seconds > 0:
            time.sleep(seconds)

    def __repr__(self):
        return "MonotonicClock()"


class ManualClock:
    """A virtual clock advanced only by ``sleep``/``advance`` calls.

    ``sleep`` returns immediately after moving the clock forward, so
    backoff schedules and breaker cooldowns can be exercised instantly.
    The clock records every sleep, which lets tests assert the exact
    backoff sequence a retry policy produced.
    """

    def __init__(self, start=0.0):
        self._now = float(start)
        self.sleeps = []

    def time(self):
        return self._now

    def sleep(self, seconds):
        seconds = max(0.0, float(seconds))
        self.sleeps.append(seconds)
        self._now += seconds

    def advance(self, seconds):
        """Move time forward without recording a sleep."""
        self._now += max(0.0, float(seconds))

    def __repr__(self):
        return "ManualClock(t={:.6f}, sleeps={})".format(
            self._now, len(self.sleeps)
        )
