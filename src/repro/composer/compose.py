"""Composition of a query with the view it was issued against (§6).

"The mediator simply uses the algebraic plans p1 and p2 ... and for every
source operator in p2 that refers to the root of q1, the mediator sets
the input of the source operator as the plan p1."  The result is the
naive composition (Fig. 13); the rewriter then removes the ``tD``/
``mksrc`` pair (rule 11) and pushes the combined conditions to the
sources.
"""

from __future__ import annotations

from repro.errors import CompositionError
from repro.algebra import operators as ops
from repro.algebra.plan import (
    VarFactory,
    all_vars,
    clone_plan,
    iter_operators,
    rename_vars,
    replace_operator,
)

#: Source ids that refer to "the root the query was issued from".
QUERY_ROOT_IDS = ("root",)


def freshen_against(plan, *other_plans):
    """Rename ``plan``'s variables that collide with any other plan.

    Returns ``(renamed_plan, mapping)``; non-colliding variables keep
    their names so composed plans stay readable next to the paper's
    figures.
    """
    taken = set()
    for other in other_plans:
        if other is not None:
            taken |= all_vars(other)
    collisions = sorted(all_vars(plan) & taken)
    if not collisions:
        return clone_plan(plan), {}
    factory = VarFactory(plan, *[p for p in other_plans if p is not None])
    mapping = {var: factory.fresh(var + "v") for var in collisions}
    return rename_vars(plan, mapping), mapping


def root_source_operators(query_plan, view_id=None,
                           include_query_root=True):
    """The ``mksrc`` leaves of a query plan that refer to the view root.

    With ``include_query_root=False`` only the explicit ``view_id`` is
    matched — used when expanding *named* views, where a literal
    ``root`` reference belongs to an enclosing in-place query, not to
    the view.
    """
    accepted = set(QUERY_ROOT_IDS) if include_query_root else set()
    if view_id is not None:
        accepted.add(str(view_id).lstrip("&"))
    return [
        node
        for node in iter_operators(query_plan)
        if isinstance(node, ops.MkSrc)
        and node.input is None
        and str(node.source).lstrip("&") in accepted
    ]


def compose_at_root(view_plan, query_plan, view_id=None,
                    include_query_root=True):
    """The naive composed plan ``q2 ∘ q1`` (Fig. 13).

    Every ``mksrc`` of ``query_plan`` that refers to the query root (the
    literal id ``root`` — unless ``include_query_root=False`` — or
    ``view_id``) receives a fresh copy of ``view_plan`` as its input.
    """
    if not isinstance(view_plan, ops.TD):
        raise CompositionError("the view plan must be tD-rooted")
    if view_id is None:
        view_id = view_plan.root_oid
    targets = root_source_operators(query_plan, view_id,
                                    include_query_root)
    if not targets:
        raise CompositionError(
            "the query plan references no root/view source to compose on"
        )
    composed = query_plan
    for target in targets:
        view_copy, __ = freshen_against(view_plan, composed)
        replacement = ops.MkSrc(target.source, target.var, view_copy)
        composed = replace_operator(composed, target, replacement)
    return composed
