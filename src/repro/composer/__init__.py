"""Query composition and decontextualization (Sections 5 and 6).

Two entry points:

* :func:`~repro.composer.compose.compose_at_root` — a query issued from
  the *root* of a previous query's result: the view plan becomes the
  input of the query plan's source operators (the naive composition of
  Fig. 13, subsequently optimized by the rewriter's rule 11 onward);
* :func:`~repro.composer.decontext.decontextualize` — a query issued
  from a *node reached by navigation*: the node id's payload (variable +
  group-key values, :class:`repro.engine.vtree.Provenance`) is decoded
  into selection conditions pinning the context, the view's top ``tD``
  is dropped, and the query plan is re-rooted at the context variable
  (Fig. 10).
"""

from repro.composer.compose import compose_at_root, freshen_against
from repro.composer.decontext import decontextualize

__all__ = ["compose_at_root", "decontextualize", "freshen_against"]
