"""Decontextualization: queries from nodes reached by navigation (§5).

Given a view plan ``pQ`` (tD-rooted), the provenance decoded from the
start node's id (the variable the node was bound to before ``tD`` plus
the group-key values of its enclosing elements), and the plan of the
in-place query, this module builds the composed, context-free plan of
Fig. 10:

1. drop the view's top ``tD`` — the query operates on binding tuples;
2. add one selection per decoded group value, pinning the context
   (``select($C = &XYZ123)``);
3. re-root the query: its ``mksrc(root, $M)`` bound ``$M`` to the
   *children* of the start node, so each ``getD($M.path, ...)`` becomes
   ``getD($ctx.label(ctx).path, ...)`` over the pinned view body (the
   path gains the context node's label, per the paper's
   include-the-start-label convention).  When ``$M`` is used by anything
   other than ``getD`` operators, a generic child-expansion
   ``getD($ctx.label.*, $M)`` is inserted instead.

The result "delivers a query that does not depend on the context set by
q and x, which makes the solution applicable to sources with no powerful
context mechanisms" — it is then optimized by the ordinary rewriter.
"""

from __future__ import annotations

from repro.errors import CompositionError
from repro.xmltree.paths import Path, Step, WILDCARD
from repro.algebra import operators as ops
from repro.algebra.conditions import Condition
from repro.algebra.plan import iter_operators, replace_operator
from repro.composer.compose import (
    compose_at_root,
    freshen_against,
    root_source_operators,
)


def decontextualize(view_plan, provenance, query_plan, view_id=None):
    """The composed, context-free plan for a query issued from a node.

    Args:
        view_plan: the tD-rooted plan of the query that produced the
            result being navigated.
        provenance: :class:`repro.engine.vtree.Provenance` decoded from
            the start node's id; ``var=None`` means the result root.
        query_plan: the tD-rooted plan of the in-place query (referring
            to the start node through ``mksrc(root, ...)``).
    """
    if provenance.var is None and not provenance.fixed:
        return compose_at_root(view_plan, query_plan, view_id)
    if provenance.var is None:
        raise CompositionError(
            "cannot decontextualize: the node id does not identify a "
            "plan variable"
        )
    if not isinstance(view_plan, ops.TD):
        raise CompositionError("the view plan must be tD-rooted")

    context_label = _context_label(view_plan, provenance.var)
    defining_body = _body_defining(view_plan.input, provenance.var)
    body, mapping = freshen_against(defining_body, query_plan)
    ctx_var = mapping.get(provenance.var, provenance.var)
    pinned = body
    for var, key in sorted(provenance.fixed.items(), key=lambda kv: kv[0]):
        pinned = _pin(pinned, mapping.get(var, var), str(key))

    targets = root_source_operators(query_plan, view_id)
    if not targets:
        raise CompositionError(
            "the query plan references no root source to decontextualize"
        )
    if len(targets) > 1:
        # Several root references: give each its own pinned copy via the
        # generic child-expansion form.
        composed = query_plan
        for target in targets:
            copy, copy_map = freshen_against(defining_body, composed)
            copy_ctx = copy_map.get(provenance.var, provenance.var)
            copy_pinned = copy
            for var, key in sorted(provenance.fixed.items()):
                copy_pinned = _pin(
                    copy_pinned, copy_map.get(var, var), str(key)
                )
            composed = replace_operator(
                composed,
                target,
                _child_expansion(copy_ctx, context_label, target.var,
                                 copy_pinned),
            )
        return composed

    (target,) = targets
    if _only_used_by_getd(query_plan, target.var):
        composed = _fuse_getds(
            query_plan, target, ctx_var, context_label, pinned
        )
    else:
        composed = replace_operator(
            query_plan,
            target,
            _child_expansion(ctx_var, context_label, target.var, pinned),
        )
    return composed


def _pin(plan, var, key):
    """Insert ``select(var = key)`` at the highest point where ``var``
    is still bound.

    A group-by projects away the variables outside its group list (the
    outer ``$C`` disappears above an inner ``gBy($O)``), so a pin on a
    projected-away variable must sink below the grouping — it filters
    the partition contents exactly as the Section-5 construction needs.
    """
    from repro.algebra.plan import defined_vars

    out_vars = defined_vars(plan)
    if out_vars is not None and var in out_vars:
        return ops.Select(Condition.oid_equals(var, key), plan)
    children = plan.children
    for index, child in enumerate(children):
        if _binds_somewhere(child, var):
            new_children = list(children)
            new_children[index] = _pin(child, var, key)
            return plan.with_children(tuple(new_children))
    raise CompositionError(
        "cannot pin {}: not bound anywhere in the view body".format(var)
    )


def _binds_somewhere(plan, var):
    from repro.algebra.plan import defined_vars

    out_vars = defined_vars(plan)
    if out_vars is not None and var in out_vars:
        return True
    return any(_binds_somewhere(child, var) for child in plan.children)


def _body_defining(view_body, var):
    """The tuple-producing plan in whose output ``var`` is bound.

    A variable created in the main operator spine is bound in the view
    body itself.  A variable created inside an ``apply``'s nested plan
    (the OrderInfo elements of Fig. 6) is only bound within the
    partition: the nested plan is *inlined* — its ``nestedSrc`` replaced
    by the group-by's input, its top ``tD`` dropped — yielding a flat
    plan whose tuples bind both the nested variable and the group
    variables, which the pinning selections then fix.
    """
    from repro.algebra.plan import defined_vars

    spine_vars = defined_vars(view_body)
    if spine_vars is not None and var in spine_vars:
        return view_body
    for node in iter_operators(view_body):
        if not isinstance(node, ops.Apply) or node.inp_var is None:
            continue
        nested = node.plan
        nested_body = nested.input if isinstance(nested, ops.TD) else nested
        gby = node.input
        if not isinstance(gby, ops.GroupBy) or gby.out_var != node.inp_var:
            continue
        inlined = _inline_nested_src(nested_body, node.inp_var, gby.input)
        inlined_vars = defined_vars(inlined)
        if inlined_vars is not None and var in inlined_vars:
            return inlined
        deeper = _body_defining(inlined, var)
        if deeper is not inlined:
            return deeper
        deeper_vars = defined_vars(deeper)
        if deeper_vars is not None and var in deeper_vars:
            return deeper
    raise CompositionError(
        "variable {} is not produced by the view plan".format(var)
    )


def _inline_nested_src(nested_body, inp_var, group_input):
    from repro.algebra.plan import clone_plan

    body = clone_plan(nested_body)
    for node in list(iter_operators(body)):
        if isinstance(node, ops.NestedSrc) and node.var == inp_var:
            body = replace_operator(body, node, clone_plan(group_input))
    return body


def _context_label(view_plan, var):
    """The element label of the context variable's nodes in the view."""
    from repro.rewriter.context import RewriteContext

    labels = RewriteContext(view_plan).var_labels(var)
    if len(labels) == 1:
        (label,) = labels
        return label  # may be None -> wildcard
    return None


def _label_step(label):
    if label is None:
        return WILDCARD
    return Step(Step.LABEL, label)


def _child_expansion(ctx_var, label, out_var, input_plan):
    """``getD($ctx.label.*, $M)``: bind ``$M`` to the context's children."""
    path = Path((_label_step(label), WILDCARD))
    return ops.GetD(ctx_var, path, out_var, input_plan)


def _only_used_by_getd(query_plan, var):
    for node in iter_operators(query_plan):
        if isinstance(node, ops.GetD) and node.in_var == var:
            continue
        if var in node.used_vars():
            return False
        if isinstance(node, ops.TD) and node.var == var:
            return False
    return True


def _fuse_getds(query_plan, target, ctx_var, context_label, pinned):
    """Re-root every ``getD($M.path, ...)`` at the context variable.

    ``$M`` ranged over the start node's children; a path from a child
    becomes the same path prefixed with the start node's label, rooted
    at the context variable itself — exactly Fig. 10's
    ``getD(...orderInfo.order, $O)`` over ``select($C = &XYZ123)``.
    """
    composed = replace_operator(query_plan, target, pinned)
    while True:
        changed = False
        for node in iter_operators(composed):
            if isinstance(node, ops.GetD) and node.in_var == target.var:
                new_path = Path(
                    (_label_step(context_label),) + node.path.steps
                )
                replacement = ops.GetD(
                    ctx_var, new_path, node.out_var, node.input
                )
                composed = replace_operator(composed, node, replacement)
                changed = True
                break
        if not changed:
            return composed
