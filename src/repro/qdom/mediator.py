"""The MIX mediator: the Fig.-1 architecture in one object.

A query's lifecycle, exactly as the paper's architecture section lays it
out: the XQuery text is translated to an XMAS plan, rewritten by the
optimizer, the maximal relational parts are pushed to the sources as SQL
(``rQ``), and the engine returns the root of a *virtual* result that the
client navigates.  A query issued from a node of a previous result is
first decontextualized (Section 5) or composed (Section 6), then goes
through the same rewrite/push/evaluate pipeline.
"""

from __future__ import annotations

import itertools

from repro.errors import CompositionError
from repro.algebra.plan import validate_plan
from repro.cache.keys import catalog_shape, normalize_query
from repro.algebra.translator import Translator
from repro.composer import compose_at_root, decontextualize
from repro.engine.lazy import LazyEngine
from repro.engine.eager import EagerEngine
from repro.engine.vtree import VNode
from repro.qdom.api import QdomNode
from repro.obs import Instrument, explain_analyze, explain_analyze_with_trace
from repro.rewriter import Rewriter, push_to_sources
from repro.sources.catalog import SourceCatalog
from repro.xquery.parser import parse_xquery


class Mediator:
    """A MIX mediator over a catalog of wrapped sources.

    Args:
        catalog: an existing :class:`SourceCatalog` (one is created when
            omitted).
        stats: shared statistics registry; defaults to a fresh one.
        optimize: run the Table-2 rewriter on every plan (on by default;
            benchmarks switch it off to measure the naive pipeline).
        push_sql: compile maximal relational subtrees to SQL ``rQ``
            operators (on by default).
        lazy: evaluate with the navigation-driven engine; ``False``
            selects the eager full-materialization engine (the baseline
            the paper argues against).
        on_source_error: ``"raise"`` (default) propagates source
            failures to the client; ``"degrade"`` substitutes
            ``<mix:error>`` stubs for failed subtrees so the rest of the
            answer stays navigable (partial results).
        cache: enable the multi-level cache (plan cache + navigation
            memo on the mediator, pushed-SQL result cache on every
            relational source added afterwards).  Off by default; the
            CLI turns it on.  Invalidation is version-based, never
            time-based (see :mod:`repro.cache`).
        cache_size: max entries per cache level; ``0`` disables caching
            even when ``cache=True``.
        cost_optimizer: statistics-driven cost-based planning (on by
            default).  Controls the relational executor's join
            order/build side/index choice on every source added through
            :meth:`add_source`, the statistics-gated SQL refinements of
            the push-down, and the ``est=`` column of EXPLAIN ANALYZE.
            ``False`` (CLI ``--no-optimizer``) reproduces the seed's
            syntactic plans byte for byte.
        strict: run the static plan verifier on every compiled plan, at
            every pipeline stage (translate, each rewrite step, SQL
            split).  A transformation that breaks binding-schema flow
            raises :class:`~repro.errors.PlanVerificationError` naming
            the offending stage.  Verification results are cached with
            the plan, so warm plan-cache hits never re-verify.
        block_size: tuples per dataflow vector / children per
            navigation prefetch (block-at-a-time execution, on by
            default at :data:`~repro.engine.block.DEFAULT_BLOCK_SIZE`).
            Answers are byte-identical at every size and
            ``tuples_shipped`` is unchanged; sizes ``> 1`` amortize the
            per-tuple engine bookkeeping and per-hop navigation
            commands (see E-BLOCK).  ``1`` reproduces the seed's
            tuple-at-a-time pipeline and per-hop command transcripts
            exactly (strict shipping-minimality and golden-trace tests
            pin this).  Sources added through :meth:`add_source` that
            support ``set_block_size`` batch their row fetches to the
            same width.
        extension_rules: extra rewrite rules registered *after* the
            Table-2 set (registration order is application priority;
            see :class:`repro.rewriter.Rewriter`).  Each rule must
            satisfy the registration contract of
            :mod:`repro.rewriter.rule` — a nonempty unique ``name``, a
            declared ``schema_contract``, an ``apply`` method.  Under
            ``strict=True`` the bar is higher: every extension rule
            must carry full explicit certification metadata *and* pass
            the static rule certifier
            (:func:`repro.analysis.certify_rules` — schema contract,
            termination against the whole rule set, liveness/shadowing,
            differential answer preservation) before the mediator will
            construct; a refused rule raises
            :class:`~repro.errors.RuleCertificationError` naming the
            findings.
    """

    def __init__(self, catalog=None, stats=None, optimize=True,
                 push_sql=True, lazy=True, dedup_groups=False,
                 on_source_error="raise", cache=False, cache_size=128,
                 cost_optimizer=True, strict=False, block_size=None,
                 extension_rules=None):
        if on_source_error not in ("raise", "degrade"):
            raise ValueError(
                "on_source_error must be 'raise' or 'degrade', "
                "got {!r}".format(on_source_error)
            )
        if block_size is None:
            from repro.engine.block import DEFAULT_BLOCK_SIZE

            block_size = DEFAULT_BLOCK_SIZE
        if not isinstance(block_size, int) or block_size < 1:
            raise ValueError(
                "block_size must be an int >= 1, got {!r}".format(
                    block_size
                )
            )
        self.block_size = block_size
        self.catalog = catalog or SourceCatalog()
        self.stats = stats or Instrument()
        self.obs = self.stats
        self.optimize = optimize
        self.push_sql = push_sql
        self.lazy = lazy
        self.on_source_error = on_source_error
        self.cost_optimizer = cost_optimizer
        self.strict = strict
        #: Stage count of the most recent verification (a strict compile
        #: or a plan-cache hit on a verified entry); ``None`` otherwise.
        self.last_verified_stages = None
        self.cache_size = cache_size
        if cache and cache_size:
            from repro.cache import CacheManager

            self.cache = CacheManager(cache_size, obs=self.obs)
        else:
            self.cache = None
        self._translator = Translator(dedup_groups=dedup_groups)
        self._rewriter = Rewriter()
        #: Rule-name sequence fired while compiling the most recent
        #: plan (restored from the plan cache on a warm hit, so
        #: EXPLAIN's ``-- rewrite:`` provenance survives skipped
        #: compilation); ``()`` when nothing fired.
        self.last_rewrite_rules = ()
        if extension_rules:
            self._register_extension_rules(tuple(extension_rules))
        self._view_ids = itertools.count(1)
        self._views = {}  # view name -> tD-rooted plan
        self._views_epoch = 0  # bumped by define_view; part of plan keys

    # -- configuration ------------------------------------------------------------

    def _register_extension_rules(self, rules):
        """Register extension rewrite rules, certifying under strict mode.

        Non-strict mediators only enforce the registration contract
        (done by :meth:`Rewriter.register` itself).  Strict mediators
        additionally refuse rules without full explicit certification
        metadata and rules the static certifier rejects — an uncertified
        rule must never touch a strict mediator's plans.
        """
        if self.strict:
            from repro.analysis.rulecheck import certify_rules
            from repro.errors import RuleCertificationError
            from repro.rewriter.rule import is_certifiable, rule_name

            for rule in rules:
                if not is_certifiable(rule):
                    raise RuleCertificationError(
                        "strict mediator refuses extension rule {!r}: "
                        "missing explicit certification metadata (name, "
                        "schema_contract, set_semantics)".format(rule)
                    )
            focus = [rule_name(r) for r in rules]
            report = certify_rules(extension_rules=rules, focus=focus)
            errors = [d for d in report.diagnostics if d.is_error]
            if errors:
                raise RuleCertificationError(
                    "strict mediator refuses uncertified extension "
                    "rule(s): {}".format(
                        "; ".join(d.render() for d in errors[:3])
                    ),
                    diagnostics=errors,
                )
        for rule in rules:
            self._rewriter.register(rule)

    def add_source(self, source):
        """Register a wrapped source (all its documents).

        With caching enabled, relational sources get a pushed-SQL
        result cache of the mediator's ``cache_size`` (counters on the
        mediator's instrument).
        """
        self.catalog.register(source)
        if self.cache is not None:
            enable = getattr(source, "enable_sql_cache", None)
            if callable(enable):
                enable(self.cache_size, obs=self.obs)
        set_cost = getattr(source, "set_cost_optimizer", None)
        if callable(set_cost):
            set_cost(self.cost_optimizer)
        set_block = getattr(source, "set_block_size", None)
        if callable(set_block):
            set_block(self.block_size)
        return self

    def analyze_sources(self):
        """``ANALYZE`` every source that supports it.

        Returns ``{server_name: tables_analyzed}``.  Statistics feed the
        cost-based planners and the ``est=`` EXPLAIN column; they go
        stale (and estimates silently disappear) on the next DML.
        """
        analyzed = {}
        for source in self.catalog.sources():
            analyze = getattr(source, "analyze", None)
            if callable(analyze):
                analyzed[source.server_name] = analyze()
        return analyzed

    def define_view(self, name, query_text):
        """Define a named *virtual* view.

        The view is never materialized: queries that reference
        ``document(name)`` are composed with the view's plan (Section 6)
        and optimized as one, so the combined conditions reach the
        sources.  Views may reference other views (composition repeats
        to a fixpoint).  This is the "integrated views" role of the
        Fig. 1 architecture, driven entirely by the composition
        machinery.
        """
        if self.catalog.has_document(name):
            raise CompositionError(
                "view name {!r} collides with a source document".format(
                    name
                )
            )
        plan = self._translator.translate(
            parse_xquery(query_text)
            if isinstance(query_text, str)
            else query_text,
            root_oid=name,
        )
        validate_plan(plan)
        self._views[name] = plan
        # A (re)definition changes what every query over the view means:
        # the epoch moves (old plan keys can never hit again) and live
        # entries are dropped eagerly so the change is *counted* as
        # invalidations rather than disappearing as silent key churn.
        self._views_epoch += 1
        if self.cache is not None:
            self.cache.clear()
        return self

    def view_names(self):
        return sorted(self._views)

    def _expand_views(self, plan):
        """Compose every reference to a named view, to a fixpoint."""
        from repro.composer.compose import root_source_operators

        for __ in range(len(self._views) + 1):
            expanded = False
            for name, view_plan in self._views.items():
                if root_source_operators(
                    plan, name, include_query_root=False
                ):
                    plan = compose_at_root(
                        view_plan, plan, view_id=name,
                        include_query_root=False,
                    )
                    expanded = True
            if not expanded:
                return plan
        raise CompositionError(
            "view definitions are cyclic: {}".format(self.view_names())
        )

    # -- the client interface --------------------------------------------------------

    def query(self, query_text, on_source_error=None):
        """Run an XQuery against the registered sources and views.

        Returns the root :class:`QdomNode` of the (virtual) answer.
        ``on_source_error`` overrides the mediator-wide failure policy
        for this one query (``"raise"`` or ``"degrade"``).

        With caching enabled, the compiled plan is reused across
        repeats of the same (normalized) query, and — under the strict
        ``"raise"`` policy only — the answer's root is shared through
        the navigation memo, so child lists one session materialized
        are free for the next.  Degraded runs never touch the memo:
        a ``<mix:error>`` stub must never be served from cache.
        """
        policy = on_source_error or self.on_source_error
        with self.obs.command_span(
            "query", kind="query", query=_clip_query(query_text)
        ):
            key = self._plan_key(query_text)
            exec_plan, compose_plan, _status = self.prepare(query_text)
            memo_ok = (
                self.cache is not None
                and key is not None
                and policy == "raise"
            )
            if memo_ok:
                entry = self.cache.lookup_result(key, self.catalog)
                if entry is not None:
                    return QdomNode(
                        self,
                        VNode.root(
                            entry.root, obs=self.obs,
                            prefetch=self.block_size,
                        ),
                        entry.compose_plan,
                    )
            root = self._evaluate(exec_plan, policy)
            if memo_ok:
                self.cache.store_result(
                    key, root, compose_plan, self.catalog
                )
            return QdomNode(
                self,
                VNode.root(root, obs=self.obs, prefetch=self.block_size),
                compose_plan,
            )

    def query_from(self, qdom_node, query_text):
        """Run an XQuery whose ``document(root)`` is ``qdom_node``.

        Implements the paper's ``q(query, p)``: the query is
        decontextualized against the view that produced ``qdom_node``
        and evaluated as an ordinary context-free query.
        """
        view_plan = qdom_node.view_plan
        if view_plan is None:
            raise CompositionError(
                "this node does not belong to a mediator view"
            )
        with self.obs.command_span(
            "q", kind="query",
            query=_clip_query(query_text),
            oid=str(qdom_node.oid),
        ):
            query_plan = self.translate(query_text, assign_root=False)
            query_plan = self._expand_views(query_plan)
            vnode = qdom_node.vnode
            if vnode.is_root:
                composed = compose_at_root(view_plan, query_plan)
            else:
                provenance = vnode.require_query_root()
                composed = decontextualize(view_plan, provenance, query_plan)
            return self._run(composed)

    # -- pipeline stages ----------------------------------------------------------------

    def _plan_key(self, query_text):
        """The plan-cache key for ``query_text``, or ``None`` when this
        query cannot be cached (cache off, or unrenderable AST).

        The key binds everything the compiled plan depends on: the
        normalized query, the catalog's exported documents, the view
        epoch, and the two pipeline switches.
        """
        if self.cache is None:
            return None
        normalized = normalize_query(query_text)
        if normalized is None:
            return None
        return (
            normalized,
            catalog_shape(self.catalog),
            self._views_epoch,
            self.optimize,
            self.push_sql,
            self.cost_optimizer,
        )

    def prepare(self, query_text):
        """Compile ``query_text`` to ``(exec_plan, compose_plan, status)``.

        ``status`` is ``"hit"``/``"miss"`` when the plan cache was
        consulted, ``"off"`` when it was bypassed.  A hit skips
        parse → translate → rewrite → SQL-split entirely.
        """
        key = self._plan_key(query_text)
        if key is not None:
            hit, cached = self.cache.lookup_plan(key)
            if hit:
                # Verification and rewrite provenance are cached with
                # the plan: a warm hit reuses the stored stage count
                # and fired-rule names instead of recompiling.
                self.last_verified_stages = cached[2]
                self.last_rewrite_rules = cached[3]
                return cached[0], cached[1], "hit"
        plan = self.translate(query_text)
        plan = self._expand_views(plan)
        verified_stages = None
        if self.strict:
            exec_plan, compose_plan, verified_stages = (
                self._compile_verified(plan)
            )
        else:
            exec_plan, compose_plan = self.optimize_plan(plan)
        self.last_verified_stages = verified_stages
        if key is not None:
            self.cache.store_plan(
                key, exec_plan, compose_plan,
                verified_stages=verified_stages,
                rewrite_rules=self.last_rewrite_rules,
            )
            return exec_plan, compose_plan, "miss"
        return exec_plan, compose_plan, "off"

    def _compile_verified(self, plan):
        """Rewrite/push ``plan`` with the static verifier run after
        every stage; returns ``(exec_plan, compose_plan, stages)``.

        Raises :class:`~repro.errors.PlanVerificationError` (naming the
        stage, and for rewrites the rule) as soon as a stage's output
        breaks binding-schema flow.
        """
        from repro.analysis import assert_plan_verifies

        with self.obs.timer("verify"):
            assert_plan_verifies(
                plan, catalog=self.catalog, stage="translate"
            )
        stages = 1
        trace = [] if self.optimize else None
        exec_plan, compose_plan = self.optimize_plan(plan, trace=trace)
        with self.obs.timer("verify"):
            for step in trace or ():
                assert_plan_verifies(
                    step.plan, catalog=self.catalog,
                    stage="rewrite[{}]".format(step.rule_name),
                    rule=step.rule_name,
                )
                stages += 1
            if self.push_sql:
                assert_plan_verifies(
                    exec_plan, catalog=self.catalog, stage="sql-split"
                )
                stages += 1
        return exec_plan, compose_plan, stages

    def translate(self, query_text, assign_root=True):
        """XQuery text (or parsed AST) to a validated XMAS plan."""
        query = (
            parse_xquery(query_text)
            if isinstance(query_text, str)
            else query_text
        )
        root_oid = (
            "view{}".format(next(self._view_ids)) if assign_root else None
        )
        with self.obs.timer("translate"):
            plan = self._translator.translate(query, root_oid=root_oid)
        validate_plan(plan)
        return plan

    def optimize_plan(self, plan, trace=None):
        """Rewrite and (optionally) push SQL.

        Returns ``(executable_plan, compose_plan)``: the second is the
        rewritten plan *before* SQL splitting — in-place queries compose
        against it, because a plan with ``rQ`` leaves cannot be further
        combined with new conditions and re-pushed.
        """
        if self.optimize:
            with self.obs.timer("rewrite"):
                plan = self._rewriter.rewrite(plan, trace=trace)
            self.last_rewrite_rules = self._rewriter.last_rule_names
        else:
            self.last_rewrite_rules = ()
        compose_plan = plan
        if self.push_sql:
            with self.obs.timer("push_sql"):
                plan = push_to_sources(
                    plan, self.catalog, cost=self.cost_optimizer
                )
        return plan, compose_plan

    def _run(self, plan, on_source_error=None):
        """Optimize + evaluate an (already composed) plan.

        Composed plans carry context from a live result handle, so they
        bypass both mediator caches.
        """
        exec_plan, compose_plan = self.optimize_plan(plan)
        policy = on_source_error or self.on_source_error
        root = self._evaluate(exec_plan, policy)
        return QdomNode(
            self,
            VNode.root(root, obs=self.obs, prefetch=self.block_size),
            compose_plan,
        )

    def _evaluate(self, exec_plan, policy):
        """Evaluate an executable plan to its answer root Node."""
        if self.lazy:
            engine = LazyEngine(
                self.catalog, stats=self.stats, on_source_error=policy,
                block_size=self.block_size,
            )
        else:
            # The eager engine materializes everything up front; block
            # vectors would change nothing it measures.
            engine = EagerEngine(
                self.catalog, stats=self.stats, on_source_error=policy
            )
        return engine.evaluate_tree(exec_plan)

    # -- static analysis --------------------------------------------------------------

    def verify_query(self, query_text, block_check=False):
        """Per-stage static verification of ``query_text``'s pipeline.

        Recompiles outside the plan cache (without consuming a view id,
        so repeated calls never perturb plan naming) and runs the plan
        verifier after translate, after every rewrite step, and after
        the SQL split.  ``block_check=True`` adds the runtime
        block-vs-tuple differential stage (``MIX-E011``) — opt-in, as
        it evaluates the plan against the live sources.  Returns a
        :class:`~repro.analysis.PipelineReport`.
        """
        from repro.analysis import verify_query_pipeline

        return verify_query_pipeline(
            self, query_text, block_check=block_check
        )

    def lint(self, query_text):
        """Schema-aware lint of ``query_text`` against this mediator's
        catalog and views; returns a list of
        :class:`~repro.analysis.Diagnostic`."""
        from repro.analysis import lint_query

        return lint_query(
            query_text, catalog=self.catalog, views=self.view_names()
        )

    # -- observability ---------------------------------------------------------------

    def explain(self, query_text, mask_times=False):
        """``EXPLAIN ANALYZE`` for ``query_text``: run the full pipeline
        on a dedicated instrument and return the annotated plan text."""
        return explain_analyze(self, query_text, mask_times=mask_times)

    def explain_with_trace(self, query_text, mask_times=False):
        """Like :meth:`explain`, also returning ``(text, trace, plan)``."""
        return explain_analyze_with_trace(
            self, query_text, mask_times=mask_times
        )

    def last_trace(self):
        """The most recent completed trace on this mediator's bus."""
        return self.obs.last_trace()

    def cache_stats(self):
        """Counter snapshots of every cache level, or ``None`` when
        caching is off.

        ``plan_cache`` and ``nav_memo`` are this mediator's; ``sql``
        lists one health dict per relational source with a result cache
        (see :meth:`RelationalWrapper.sql_cache_health`).
        """
        if self.cache is None:
            return None
        snapshot = self.cache.stats()
        snapshot["sql"] = []
        for source in self.catalog.sources():
            health = getattr(source, "sql_cache_health", None)
            if callable(health):
                report = health()
                if report is not None:
                    snapshot["sql"].append(report)
        return snapshot

    def __repr__(self):
        return "Mediator(docs={})".format(self.catalog.document_ids())


def _clip_query(query_text, limit=160):
    """Whitespace-normalised query text, clipped for span attributes."""
    return " ".join(str(query_text).split())[:limit]
