"""A BBQ-style browsing session on top of QDOM.

The paper's front end is the BBQ GUI [14], "which blends querying and
browsing": the user walks into the view and may, at any time, issue a
query relative to the point the navigation has reached.  BBQ itself is a
thin client of QDOM; :class:`Session` is its programmatic analogue —
a cursor with breadcrumbs, label-directed navigation, and in-place
refinement, with every step recorded so an interaction can be replayed
or audited.
"""

from __future__ import annotations

from repro.errors import NavigationError


class Session:
    """An interactive cursor over mediator views.

    Example::

        session = Session(mediator)
        session.open(Q1)
        session.down()                   # into the first CustRec
        session.into("customer")         # first child labeled customer
        session.up()
        session.refine(Q3)               # in-place query from here
        print(session.breadcrumbs())     # where am I?
    """

    def __init__(self, mediator):
        self._mediator = mediator
        self._current = None
        self._view_stack = []   # roots of past views (refinement history)
        self._log = []

    # -- state ---------------------------------------------------------------------

    @property
    def current(self):
        """The :class:`~repro.qdom.api.QdomNode` the cursor is on."""
        if self._current is None:
            raise NavigationError("no view opened; call open() first")
        return self._current

    def label(self):
        return self.current.fl()

    def value(self):
        return self.current.fv()

    def log(self):
        """The recorded interaction, one ``(command, detail)`` per step."""
        return list(self._log)

    def breadcrumbs(self):
        """Labels from the view root down to the current node."""
        trail = []
        vnode = self.current.vnode
        while vnode is not None:
            trail.append(str(vnode.label()))
            vnode = vnode.parent
        return list(reversed(trail))

    # -- opening and refining -------------------------------------------------------

    def open(self, query_text, on_source_error=None):
        """Run a query against the sources and move to its result root.

        ``on_source_error`` overrides the mediator's failure policy for
        this view: ``"degrade"`` keeps browsing over partial results
        (``<mix:error>`` stubs mark the gaps), ``"raise"`` propagates.
        """
        self._current = self._mediator.query(
            query_text, on_source_error=on_source_error
        )
        self._view_stack = [self._current]
        self._record("open", query_text)
        return self

    def refine(self, query_text):
        """The paper's query-in-place: run ``query_text`` with the
        current node as its ``document(root)`` and move to the new
        result root."""
        self._current = self.current.q(query_text)
        self._view_stack.append(self._current)
        self._record("refine", query_text)
        return self

    def back_to_previous_view(self):
        """Return to the root of the view before the last refinement."""
        if len(self._view_stack) < 2:
            raise NavigationError("no previous view to return to")
        self._view_stack.pop()
        self._current = self._view_stack[-1]
        self._record("back", "previous view")
        return self

    # -- navigation -------------------------------------------------------------------

    def down(self):
        """``d``: move to the first child."""
        child = self.current.d()
        if child is None:
            raise NavigationError(
                "cannot go down from a leaf ({})".format(self.label())
            )
        self._current = child
        self._record("down", child.fl())
        return self

    def right(self):
        """``r``: move to the right sibling."""
        sibling = self.current.r()
        if sibling is None:
            raise NavigationError(
                "no right sibling of {}".format(self.label())
            )
        self._current = sibling
        self._record("right", sibling.fl())
        return self

    def up(self):
        """Move to the parent (a session convenience; the paper's QDOM
        subset has no up command — the session's breadcrumbs provide it)."""
        parent = self.current.vnode.parent
        if parent is None:
            raise NavigationError("already at the view root")
        from repro.qdom.api import QdomNode

        self._current = QdomNode(
            self._mediator, parent, self.current.view_plan
        )
        self._record("up", parent.label())
        return self

    def into(self, label):
        """Move to the first child with the given label."""
        child = self.current.find(label)
        if child is None:
            raise NavigationError(
                "no child labeled {!r} under {}".format(label, self.label())
            )
        self._current = child
        self._record("into", label)
        return self

    def next_where(self, predicate):
        """Advance right until ``predicate(node)`` holds."""
        node = self.current
        while node is not None and not predicate(node):
            node = node.r()
        if node is None:
            raise NavigationError("no sibling satisfies the predicate")
        self._current = node
        self._record("next_where", node.fl())
        return self

    def _record(self, command, detail):
        self._log.append((command, str(detail)[:120]))
        self._mediator.obs.incr("session_commands")

    def last_trace(self):
        """The trace of the most recent command on this session's
        mediator bus (see :meth:`repro.obs.Instrument.last_trace`)."""
        return self._mediator.obs.last_trace()

    def __repr__(self):
        try:
            where = " / ".join(self.breadcrumbs())
        except NavigationError:
            where = "<no view>"
        return "Session(at {})".format(where)
