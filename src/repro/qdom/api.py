"""The client-side QDOM node handle.

"In MIX's implementation the p_i's are really Java objects that are
resident on the client's memory ... a thin client-side library associates
with each p_i the object id of the corresponding object exported by the
mediator."  :class:`QdomNode` is that thin handle: it wraps the engine's
:class:`~repro.engine.vtree.VNode` (whose structured ids do the heavy
lifting) together with the mediator and the view plan the node belongs
to, so that ``q(query, p)`` can decontextualize.
"""

from __future__ import annotations


class QdomNode:
    """A client handle on one node of a virtual query result.

    Navigation methods mirror the paper's command names: :meth:`d`
    (down), :meth:`r` (right), :meth:`fl` (label fetch), :meth:`fv`
    (value fetch), and :meth:`q` (query in place).  ``None`` plays the
    paper's ``⊥``.
    """

    __slots__ = ("_mediator", "_vnode", "view_plan")

    def __init__(self, mediator, vnode, view_plan):
        self._mediator = mediator
        self._vnode = vnode
        self.view_plan = view_plan

    # -- navigation (Section 2) ----------------------------------------------------

    def d(self):
        """``d(p)``: the first child, or ``None`` on a leaf."""
        child = self._vnode.down()
        if child is None:
            return None
        return QdomNode(self._mediator, child, self.view_plan)

    def r(self):
        """``r(p)``: the right sibling, or ``None``."""
        sibling = self._vnode.right()
        if sibling is None:
            return None
        return QdomNode(self._mediator, sibling, self.view_plan)

    def fl(self):
        """``fl(p)``: the node's label."""
        return self._vnode.label()

    def fv(self):
        """``fv(p)``: the leaf's value, or ``None`` on a non-leaf."""
        return self._vnode.value()

    def q(self, query_text):
        """``q(query, p)``: run ``query`` with this node as its root.

        The query's ``document(root)`` refers to this node.  Returns the
        root :class:`QdomNode` of the new virtual answer.
        """
        return self._mediator.query_from(self, query_text)

    def d_many(self, count=None):
        """``d_many(p, k)``: the first ``count`` children (all when
        ``None``) in **one** bulk navigation command.

        This is block execution's bulk command: one command span, one
        engine descent, children forced prefetch-k at a time.  With
        ``block_size=1`` mediators it degrades to a single-step force
        per child but still costs only one command.
        """
        children = self._vnode.down_many(count)
        return [
            QdomNode(self._mediator, child, self.view_plan)
            for child in children
        ]

    # -- conveniences (not QDOM commands) --------------------------------------------

    @property
    def oid(self):
        """The node id the mediator exports for this node."""
        return self._vnode.node.oid

    def children(self):
        """All children (forces them).

        Under a block-mode mediator this rides the bulk ``d_many``
        command; in tuple mode (``block_size=1``) it replays the seed's
        one-command-per-hop ``d``/``r`` loop, keeping navigation
        transcripts and command counts seed-identical.
        """
        if self._vnode.prefetch > 1:
            return self.d_many()
        out = []
        child = self.d()
        while child is not None:
            out.append(child)
            child = child.r()
        return out

    def walk(self, budget=None):
        """Depth-first ``[depth, label]`` transcript below this node,
        optionally stopping after ``budget`` landings.

        Returns ``(steps, truncated)``.  The transcript is identical at
        every block size; block-mode mediators produce it via bulk
        ``d_many`` commands (labels ride the bulk reply — no per-child
        ``fl`` round trips), tuple mode via the seed's per-hop
        ``d``/``r``/``fl`` commands.  This is the deep lazy walk E-BLOCK
        measures, and what the server's ``walk`` op serves.
        """
        from repro.engine.vtree import VNode

        steps = []
        remaining = [float("inf") if budget is None else budget]
        vnode = self._vnode
        bulk = vnode.prefetch > 1

        def rec_bulk(node, depth):
            # A bulk reply ships whole blocks: subtrees that earlier
            # d_many replies already materialized are walked client-
            # locally, with no further commands.  Only nodes still owing
            # a lazy tail cost a command (and its span).
            if not node.fully_materialized or node.is_broken:
                VNode(node, obs=vnode.obs,
                      prefetch=vnode.prefetch).down_many()
            for child in node.materialized_children():
                if remaining[0] <= 0:
                    return
                remaining[0] -= 1
                steps.append([depth, child.label])
                rec_bulk(child, depth + 1)

        def rec_seed(node, depth):
            child = node.d()
            while child is not None and remaining[0] > 0:
                remaining[0] -= 1
                steps.append([depth, child.fl()])
                rec_seed(child, depth + 1)
                if remaining[0] <= 0:
                    return
                child = child.r()

        if bulk:
            rec_bulk(vnode.node, 0)
        else:
            rec_seed(self, 0)
        return steps, remaining[0] <= 0

    def find(self, label):
        """First child with the given label, or ``None``."""
        child = self.d()
        while child is not None:
            if child.fl() == label:
                return child
            child = child.r()
        return None

    def to_tree(self):
        """Materialize the subtree into a plain Node tree."""
        from repro.engine.vtree import vnode_to_tree

        return vnode_to_tree(self._vnode)

    def provenance(self):
        """The decoded Section-5 payload of this node's id."""
        return self._vnode.provenance()

    def last_trace(self):
        """The trace of the most recent command on this node's mediator.

        Each navigation command (``d``/``r``/``fl``/``fv``) completes one
        trace; the returned :class:`~repro.obs.Span` links the command to
        the lazy-operator work (and SQL) it caused."""
        return self._mediator.obs.last_trace()

    @property
    def vnode(self):
        return self._vnode

    def __repr__(self):
        return "QdomNode({}:{})".format(self.oid, self.fl())
