"""QDOM — the Querible Document Object Model API (Section 2).

The programmatic interface MIX offers its clients: DOM-style navigation
(``d``, ``r``, ``fl``, ``fv``) over virtual XML views, plus the
``q(query, p)`` command that issues an XQuery *from any node reached by
navigation* and returns the root of a new virtual answer.

::

    from repro.qdom import Mediator

    mediator = Mediator()
    mediator.add_source(wrapper)
    root = mediator.query(Q1)        # a QdomNode: nothing materialized yet
    cust = root.d()                  # first CustRec (one tuple pulled)
    nxt = cust.r()                   # second CustRec
    refined = cust.q(Q3)             # in-place query: decontextualized,
                                     # optimized, pushed to the sources
"""

from repro.qdom.api import QdomNode
from repro.qdom.mediator import Mediator
from repro.qdom.session import Session

__all__ = ["Mediator", "QdomNode", "Session"]
