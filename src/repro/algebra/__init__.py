"""The XMAS algebra (Section 3 of the paper).

XMAS is tuple-oriented: operator inputs and outputs are *sets of binding
lists* (tuples of variable/value pairs), which is what lets the paper
build an iterator model on top — "much in the way that iterator models
were built on the relational algebra".

Submodules:

* :mod:`repro.algebra.values` — what a variable may be bound to: an XML
  element, a list of elements, or a nested set of binding lists; plus
  skolem oids for constructed elements.
* :mod:`repro.algebra.bindings` — binding tuples/sets and the Fig.-5 tree
  representation.
* :mod:`repro.algebra.conditions` — the condition language of select and
  join.
* :mod:`repro.algebra.operators` — the 14 operators as plan nodes.
* :mod:`repro.algebra.plan` — plan traversal, cloning, renaming,
  validation, structural equality.
* :mod:`repro.algebra.translator` — XQuery (Fig. 4 subset) to XMAS plans.
* :mod:`repro.algebra.printer` — renders plans in the paper's figure style.
"""

from repro.algebra.values import VList, Skolem, value_kind
from repro.algebra.bindings import BindingTuple, BindingSet, bindings_to_tree
from repro.algebra.conditions import Condition, VarOperand, ConstOperand
from repro.algebra.operators import (
    Apply,
    Cat,
    CrElt,
    Empty,
    GetD,
    GroupBy,
    Join,
    MkSrc,
    NestedSrc,
    Operator,
    OrderBy,
    Project,
    RelQuery,
    RQVar,
    Select,
    SemiJoin,
    TD,
)
from repro.algebra.plan import (
    plan_equal,
    clone_plan,
    rename_vars,
    iter_operators,
    defined_vars,
    validate_plan,
)
from repro.algebra.printer import render_plan

__all__ = [
    "Apply",
    "BindingSet",
    "BindingTuple",
    "Cat",
    "Condition",
    "ConstOperand",
    "CrElt",
    "Empty",
    "GetD",
    "GroupBy",
    "Join",
    "MkSrc",
    "NestedSrc",
    "Operator",
    "OrderBy",
    "Project",
    "RQVar",
    "RelQuery",
    "Select",
    "SemiJoin",
    "Skolem",
    "TD",
    "VList",
    "VarOperand",
    "bindings_to_tree",
    "clone_plan",
    "defined_vars",
    "iter_operators",
    "plan_equal",
    "render_plan",
    "rename_vars",
    "validate_plan",
    "value_kind",
]
