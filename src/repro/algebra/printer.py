"""Rendering of XMAS plans in the paper's figure style.

``render_operator`` yields the one-line spelling the figures use
(``crElt(custRec, f($C), $W, $V)``, ``getD($C.customer.id, $1)``, ...);
``render_plan`` lays a whole plan out as an indented tree with nested
``apply`` plans shown inline, so the outputs are directly comparable with
Figures 6, 9-11 and 13-22.
"""

from __future__ import annotations

from repro.algebra import operators as ops


def render_operator(node):
    """The single-line, paper-style spelling of one operator."""
    if isinstance(node, ops.MkSrc):
        return "mksrc({}, {})".format(node.source, node.var)
    if isinstance(node, ops.GetD):
        return "getD({}.{}, {})".format(node.in_var, node.path, node.out_var)
    if isinstance(node, ops.Select):
        return "select({!r})".format(node.condition)
    if isinstance(node, ops.Project):
        return "project({})".format(", ".join(node.variables))
    if isinstance(node, ops.Join):
        return "join({})".format(_conds(node.conditions))
    if isinstance(node, ops.SemiJoin):
        name = "Lsemijoin" if node.keep == "right" else "Rsemijoin"
        return "{}({})".format(name, _conds(node.conditions))
    if isinstance(node, ops.CrElt):
        ch = "list({})".format(node.ch_var) if node.ch_is_list else node.ch_var
        return "crElt({}, {}({}), {}, {})".format(
            node.label, node.fn, ", ".join(node.skolem_args), ch, node.out_var
        )
    if isinstance(node, ops.Cat):
        x = "list({})".format(node.x_var) if node.x_single else node.x_var
        y = "list({})".format(node.y_var) if node.y_single else node.y_var
        return "cat({}, {}, {})".format(x, y, node.out_var)
    if isinstance(node, ops.TD):
        if node.root_oid is not None:
            return "tD({}, {})".format(node.var, node.root_oid)
        return "tD({})".format(node.var)
    if isinstance(node, ops.GroupBy):
        return "gBy({}, {})".format(", ".join(node.group_vars), node.out_var)
    if isinstance(node, ops.Apply):
        inp = node.inp_var if node.inp_var is not None else "null"
        return "apply(p, {}, {})".format(inp, node.out_var)
    if isinstance(node, ops.NestedSrc):
        return "nSrc({})".format(node.var)
    if isinstance(node, ops.RelQuery):
        varmap = "; ".join(repr(entry) for entry in node.varmap)
        return "rQ({}, <sql>, {{{}}})".format(node.server, varmap)
    if isinstance(node, ops.OrderBy):
        return "orderBy([{}])".format(", ".join(node.variables))
    if isinstance(node, ops.Empty):
        return "∅"
    return "{}(?)".format(type(node).__name__)


def _conds(conditions):
    if not conditions:
        return "true"
    return " and ".join(repr(c) for c in conditions)


def render_plan(plan, indent=0, show_sql=True):
    """A multi-line, indented rendering of a whole plan.

    Nested ``apply`` plans are printed under a ``p:`` header one level
    deeper, mirroring the paper's inline boxes.
    """
    lines = []
    _render(plan, indent, lines, show_sql)
    return "\n".join(lines)


def _render(node, depth, lines, show_sql):
    pad = "  " * depth
    lines.append(pad + render_operator(node))
    if isinstance(node, ops.Apply):
        lines.append(pad + "  p:")
        _render(node.plan, depth + 2, lines, show_sql)
    if isinstance(node, ops.RelQuery) and show_sql:
        for sql_line in node.sql.splitlines():
            lines.append(pad + "  | " + sql_line.strip())
    for child in node.children:
        _render(child, depth + 1, lines, show_sql)
