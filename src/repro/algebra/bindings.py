"""Binding tuples and binding sets, with the Fig.-5 tree representation.

A *binding list* (we say binding tuple, to avoid clashing with Python
lists) is ``[$var1 = val1, ..., $vark = valk]``; a *set of binding lists*
is the input/output of most XMAS operators.  "For the purposes of
evaluating navigational commands, the output of each operator is also
viewed as a tree" — :func:`bindings_to_tree` builds exactly the paper's
Fig. 5 rendering.
"""

from __future__ import annotations

from repro.errors import MixError, PlanError
from repro.xmltree.tree import Node, OidGenerator
from repro.algebra.values import VList, value_key, values_equal


class BindingTuple:
    """An immutable tuple of variable/value bindings.

    Variables are strings that include the ``$`` sigil (``"$C"``), exactly
    as the paper writes them.
    """

    __slots__ = ("_bindings",)

    def __init__(self, bindings=()):
        if isinstance(bindings, dict):
            self._bindings = dict(bindings)
        else:
            self._bindings = dict(bindings)
        for var in self._bindings:
            _check_var(var)

    # -- access ---------------------------------------------------------------

    def get(self, var):
        """The value bound to ``var`` (raises :class:`PlanError` if absent)."""
        try:
            return self._bindings[var]
        except KeyError:
            raise PlanError(
                "no binding for {} in tuple over {}".format(
                    var, sorted(self._bindings)
                )
            )

    def has(self, var):
        return var in self._bindings

    def variables(self):
        """The set of variables bound in this tuple."""
        return frozenset(self._bindings)

    def items(self):
        return self._bindings.items()

    # -- construction -----------------------------------------------------------

    def extend(self, var, value):
        """The paper's ``b + ($v = w)``; ``var`` must not be bound yet."""
        _check_var(var)
        if var in self._bindings:
            raise PlanError("variable {} already bound".format(var))
        merged = dict(self._bindings)
        merged[var] = value
        return BindingTuple(merged)

    def merge(self, other):
        """The paper's ``b1 + b2``; variable sets must be disjoint."""
        overlap = self.variables() & other.variables()
        if overlap:
            raise PlanError(
                "cannot merge tuples sharing variables {}".format(
                    sorted(overlap)
                )
            )
        merged = dict(self._bindings)
        merged.update(other._bindings)
        return BindingTuple(merged)

    def project(self, variables):
        """Restrict to ``variables`` (all must be bound)."""
        return BindingTuple({v: self.get(v) for v in variables})

    def rename(self, mapping):
        """A copy with variables renamed per ``mapping`` (old -> new)."""
        renamed = {}
        for var, value in self._bindings.items():
            renamed[mapping.get(var, var)] = value
        return BindingTuple(renamed)

    # -- comparison ---------------------------------------------------------------

    def key(self, variables=None):
        """Hashable grouping/dedup key over ``variables`` (default: all)."""
        if variables is None:
            variables = sorted(self._bindings)
        return tuple((v, value_key(self.get(v))) for v in variables)

    def equals(self, other):
        if self.variables() != other.variables():
            return False
        return all(
            values_equal(self.get(v), other.get(v)) for v in self.variables()
        )

    def __repr__(self):
        inner = ", ".join(
            "{}={!r}".format(v, val) for v, val in sorted(self._bindings.items())
        )
        return "[{}]".format(inner)


class BindingSet:
    """An ordered collection of binding tuples.

    The paper calls it a set; order still matters because QDOM navigation
    walks it left to right, so we keep insertion order and do duplicate
    elimination only where an operator (``project``) requires it.

    A BindingSet may carry a ``lazy_tail`` iterator: the lazy engine binds
    group-by partitions this way, so a partition's tuples are pulled from
    the source only when navigation enters the group.  ``tuple_at`` forces
    only the requested prefix; ``tuples``/``len``/full iteration force
    everything.
    """

    __slots__ = ("_tuples", "_tail")

    def __init__(self, tuples=(), lazy_tail=None):
        self._tuples = list(tuples)
        self._tail = lazy_tail

    def _force(self, count):
        while self._tail is not None and (
            count is None or len(self._tuples) < count
        ):
            try:
                self._tuples.append(next(self._tail))
            except StopIteration:
                self._tail = None

    @property
    def tuples(self):
        self._force(None)
        return self._tuples

    def tuple_at(self, index):
        """The ``index``-th tuple or ``None`` — forces only that prefix."""
        if index < 0:
            return None
        self._force(index + 1)
        if index < len(self._tuples):
            return self._tuples[index]
        return None

    def __len__(self):
        self._force(None)
        return len(self._tuples)

    def __iter__(self):
        index = 0
        while True:
            t = self.tuple_at(index)
            if t is None:
                return
            yield t
            index += 1

    def __getitem__(self, index):
        return self.tuples[index]

    def append(self, binding_tuple):
        if self._tail is not None:
            raise MixError("cannot append to a lazy BindingSet")
        self._tuples.append(binding_tuple)

    def variables(self):
        """Variables common to the tuples (empty set when no tuples)."""
        first = self.tuple_at(0)
        if first is None:
            return frozenset()
        return first.variables()

    def __repr__(self):
        if self._tail is not None:
            return "BindingSet({}+ tuples, lazy)".format(len(self._tuples))
        return "BindingSet({} tuples)".format(len(self._tuples))


def _check_var(var):
    if not isinstance(var, str) or not var.startswith("$"):
        raise MixError("variables must look like '$X', got {!r}".format(var))


def bindings_to_tree(binding_set, oids=None, root_label="list"):
    """The Fig.-5 tree representation of a set of binding lists.

    The root is labeled ``list``; its children are ``binding`` nodes; each
    binding node has one child per variable, labeled with the variable
    name, whose single child is the value subtree (a list value becomes a
    ``list``-labeled node, a nested set recurses).
    """
    gen = oids or OidGenerator("b")
    root = Node(gen.fresh(), root_label)
    for binding_tuple in binding_set:
        bnode = Node(gen.fresh(), "binding")
        for var in sorted(binding_tuple.variables()):
            var_node = Node(gen.fresh(), var)
            var_node.append(_value_to_tree(binding_tuple.get(var), gen))
            bnode.append(var_node)
        root.append(bnode)
    return root


def _value_to_tree(value, gen):
    if isinstance(value, Node):
        return value
    if isinstance(value, VList):
        list_node = Node(gen.fresh(), "list")
        for item in value:
            list_node.append(_value_to_tree(item, gen))
        return list_node
    if isinstance(value, BindingSet):
        return bindings_to_tree(value, gen, root_label="set")
    raise MixError("not a XMAS value: {!r}".format(value))
