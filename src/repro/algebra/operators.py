"""The 14 XMAS operators as plan nodes (paper Section 3).

Plan nodes are *descriptions*: evaluation lives in
:mod:`repro.engine.eager` (full materialization) and
:mod:`repro.engine.lazy` (navigation-driven).  Every node knows

* its sub-plans (``children``),
* the variables it introduces (``local_defined_vars``) and consumes
  (``used_vars``),
* how to copy itself with substituted children (``with_children``) and
  renamed variables (``rename_local``), and
* a structural ``signature`` used for plan equality in tests and in the
  rewriter's pattern matcher.
"""

from __future__ import annotations

from repro.errors import PlanError
from repro.xmltree.paths import Path
from repro.algebra.conditions import Condition


class Operator:
    """Base class of all XMAS plan nodes."""

    #: short name used in signatures and the printer, set per subclass
    opname = "?"

    @property
    def children(self):
        """Sub-plans, left to right."""
        return ()

    def with_children(self, new_children):
        """A shallow copy with ``children`` replaced."""
        if new_children:
            raise PlanError(
                "{} takes no sub-plans".format(type(self).__name__)
            )
        return self

    def local_defined_vars(self):
        """Variables this node introduces into the output tuples."""
        return frozenset()

    def used_vars(self):
        """Variables this node reads from its input tuples."""
        return frozenset()

    def rename_local(self, mapping):
        """A copy of *this node only* with its variables renamed.

        Children are reattached unchanged; deep renaming is
        :func:`repro.algebra.plan.rename_vars`.
        """
        return self

    def signature(self):
        """Hashable structural identity of this node (children excluded)."""
        return (self.opname,)

    def __repr__(self):
        from repro.algebra.printer import render_operator

        return render_operator(self)


def _single_child_with(self_cls_fields):
    """(helper used inline below; kept trivial for readability)"""
    raise NotImplementedError


class MkSrc(Operator):
    """``mksrc_{&srcid, $X}`` — source access (paper op 1).

    Binds ``$X`` to each child of the document whose root id is
    ``srcid``, producing ``{[$X = e1], ..., [$X = en]}``.

    Normally a leaf.  During naive query composition (Section 6) "the
    mediator sets the input of the source operator as the plan p1": a
    ``mksrc`` may then carry a tree-producing (``tD``-rooted) input plan,
    which is exactly the configuration rewrite rule 11 eliminates.
    """

    opname = "mksrc"

    def __init__(self, source, var, input_plan=None):
        self.source = source
        self.var = var
        self.input = input_plan

    @property
    def children(self):
        return (self.input,) if self.input is not None else ()

    def with_children(self, new_children):
        if not new_children:
            return MkSrc(self.source, self.var)
        (inp,) = new_children
        return MkSrc(self.source, self.var, inp)

    def local_defined_vars(self):
        return frozenset([self.var])

    def rename_local(self, mapping):
        return MkSrc(
            self.source, mapping.get(self.var, self.var), self.input
        )

    def signature(self):
        return (self.opname, self.source, self.var)


class GetD(Operator):
    """``getD_{$A.r -> $X}`` — get descendants (paper op 2).

    For each input tuple, binds ``$X`` to every node reachable from the
    value of ``$A`` by a path matching ``path`` (the path includes the
    start node's label, per the paper's convention).
    """

    opname = "getD"

    def __init__(self, in_var, path, out_var, input_plan):
        if not isinstance(path, Path):
            raise PlanError("GetD needs a Path, got {!r}".format(path))
        self.in_var = in_var
        self.path = path
        self.out_var = out_var
        self.input = input_plan

    @property
    def children(self):
        return (self.input,)

    def with_children(self, new_children):
        (inp,) = new_children
        return GetD(self.in_var, self.path, self.out_var, inp)

    def local_defined_vars(self):
        return frozenset([self.out_var])

    def used_vars(self):
        return frozenset([self.in_var])

    def rename_local(self, mapping):
        return GetD(
            mapping.get(self.in_var, self.in_var),
            self.path,
            mapping.get(self.out_var, self.out_var),
            self.input,
        )

    def signature(self):
        return (self.opname, self.in_var, self.path, self.out_var)


class Select(Operator):
    """``select_c`` (paper op 3): keep tuples satisfying the condition."""

    opname = "select"

    def __init__(self, condition, input_plan):
        if not isinstance(condition, Condition):
            raise PlanError("Select needs a Condition")
        self.condition = condition
        self.input = input_plan

    @property
    def children(self):
        return (self.input,)

    def with_children(self, new_children):
        (inp,) = new_children
        return Select(self.condition, inp)

    def used_vars(self):
        return frozenset(self.condition.variables())

    def rename_local(self, mapping):
        return Select(self.condition.rename(mapping), self.input)

    def signature(self):
        return (self.opname, self.condition)


class Project(Operator):
    """``pi_{~v}`` (paper op 4): relational project *with duplicate
    elimination*."""

    opname = "project"

    def __init__(self, variables, input_plan):
        self.variables = tuple(variables)
        self.input = input_plan

    @property
    def children(self):
        return (self.input,)

    def with_children(self, new_children):
        (inp,) = new_children
        return Project(self.variables, inp)

    def used_vars(self):
        return frozenset(self.variables)

    def rename_local(self, mapping):
        return Project(
            tuple(mapping.get(v, v) for v in self.variables), self.input
        )

    def signature(self):
        return (self.opname, self.variables)


class Join(Operator):
    """``join_theta`` (paper op 5) over two binding sets.

    ``conditions`` is a conjunction (empty = cartesian product); variable
    sets of the two inputs must be disjoint.
    """

    opname = "join"

    def __init__(self, conditions, left, right):
        self.conditions = tuple(conditions)
        self.left = left
        self.right = right

    @property
    def children(self):
        return (self.left, self.right)

    def with_children(self, new_children):
        left, right = new_children
        return Join(self.conditions, left, right)

    def used_vars(self):
        out = set()
        for c in self.conditions:
            out |= c.variables()
        return frozenset(out)

    def rename_local(self, mapping):
        return Join(
            tuple(c.rename(mapping) for c in self.conditions),
            self.left,
            self.right,
        )

    def signature(self):
        return (self.opname, self.conditions)


class SemiJoin(Operator):
    """``lSemijoin`` / ``rSemijoin`` (paper op 6).

    Following the paper: ``rightSemijoin(I1, I2) = pi_V1(join(I1, I2))``
    keeps the *left* input's variables, ``leftSemijoin`` keeps the
    *right*'s.  ``keep`` names the surviving input (``"left"`` or
    ``"right"``); the printer maps ``keep="right"`` to the paper's
    ``Lsemijoin`` spelling.
    """

    opname = "semijoin"

    def __init__(self, conditions, left, right, keep):
        if keep not in ("left", "right"):
            raise PlanError("SemiJoin keep must be 'left' or 'right'")
        self.conditions = tuple(conditions)
        self.left = left
        self.right = right
        self.keep = keep

    @classmethod
    def left_semijoin(cls, conditions, left, right):
        """The paper's ``lSemijoin`` = ``pi_V2(join)``: keeps the right."""
        return cls(conditions, left, right, keep="right")

    @classmethod
    def right_semijoin(cls, conditions, left, right):
        """The paper's ``rSemijoin`` = ``pi_V1(join)``: keeps the left."""
        return cls(conditions, left, right, keep="left")

    @property
    def children(self):
        return (self.left, self.right)

    def with_children(self, new_children):
        left, right = new_children
        return SemiJoin(self.conditions, left, right, self.keep)

    def used_vars(self):
        out = set()
        for c in self.conditions:
            out |= c.variables()
        return frozenset(out)

    def rename_local(self, mapping):
        return SemiJoin(
            tuple(c.rename(mapping) for c in self.conditions),
            self.left,
            self.right,
            self.keep,
        )

    def signature(self):
        return (self.opname, self.conditions, self.keep)


class CrElt(Operator):
    """``crElt_{l, f(~g), $ch -> $name}`` (paper op 7): element creation.

    Creates, per input tuple, an element labeled ``label`` whose children
    are the items of the list bound to ``ch_var`` (or the single value of
    ``ch_var`` when ``ch_is_list`` — the figures' ``list($O)``
    qualifier), with skolem oid ``fn(skolem_args...)``.
    """

    opname = "crElt"

    def __init__(
        self, label, fn, skolem_args, ch_var, ch_is_list, out_var, input_plan
    ):
        self.label = label
        self.fn = fn
        self.skolem_args = tuple(skolem_args)
        self.ch_var = ch_var
        self.ch_is_list = bool(ch_is_list)
        self.out_var = out_var
        self.input = input_plan

    @property
    def children(self):
        return (self.input,)

    def with_children(self, new_children):
        (inp,) = new_children
        return CrElt(
            self.label,
            self.fn,
            self.skolem_args,
            self.ch_var,
            self.ch_is_list,
            self.out_var,
            inp,
        )

    def local_defined_vars(self):
        return frozenset([self.out_var])

    def used_vars(self):
        return frozenset([self.ch_var]) | frozenset(self.skolem_args)

    def rename_local(self, mapping):
        return CrElt(
            self.label,
            self.fn,
            tuple(mapping.get(v, v) for v in self.skolem_args),
            mapping.get(self.ch_var, self.ch_var),
            self.ch_is_list,
            mapping.get(self.out_var, self.out_var),
            self.input,
        )

    def signature(self):
        return (
            self.opname,
            self.label,
            self.fn,
            self.skolem_args,
            self.ch_var,
            self.ch_is_list,
            self.out_var,
        )


class Cat(Operator):
    """``cat_{$x, $y -> $z}`` (paper op 8): list concatenation.

    ``x_single`` / ``y_single`` correspond to the figures'
    ``list($x)`` qualifier: the value is first wrapped into a singleton
    list.
    """

    opname = "cat"

    def __init__(self, x_var, x_single, y_var, y_single, out_var, input_plan):
        self.x_var = x_var
        self.x_single = bool(x_single)
        self.y_var = y_var
        self.y_single = bool(y_single)
        self.out_var = out_var
        self.input = input_plan

    @property
    def children(self):
        return (self.input,)

    def with_children(self, new_children):
        (inp,) = new_children
        return Cat(
            self.x_var, self.x_single, self.y_var, self.y_single,
            self.out_var, inp,
        )

    def local_defined_vars(self):
        return frozenset([self.out_var])

    def used_vars(self):
        return frozenset([self.x_var, self.y_var])

    def rename_local(self, mapping):
        return Cat(
            mapping.get(self.x_var, self.x_var),
            self.x_single,
            mapping.get(self.y_var, self.y_var),
            self.y_single,
            mapping.get(self.out_var, self.out_var),
            self.input,
        )

    def signature(self):
        return (
            self.opname,
            self.x_var,
            self.x_single,
            self.y_var,
            self.y_single,
            self.out_var,
        )


class TD(Operator):
    """``tD_{$A[, rootid]}`` (paper op 9): tuple destroy.

    The final operator of every XMAS plan: strips the tuple structure and
    exports ``list[v1, ..., vn]`` — the DOM view clients expect.  The
    optional second argument names the root's oid.
    """

    opname = "tD"

    def __init__(self, var, input_plan, root_oid=None):
        self.var = var
        self.input = input_plan
        self.root_oid = root_oid

    @property
    def children(self):
        return (self.input,)

    def with_children(self, new_children):
        (inp,) = new_children
        return TD(self.var, inp, self.root_oid)

    def used_vars(self):
        return frozenset([self.var])

    def rename_local(self, mapping):
        return TD(mapping.get(self.var, self.var), self.input, self.root_oid)

    def signature(self):
        return (self.opname, self.var, self.root_oid)


class GroupBy(Operator):
    """``groupBy_{gl -> $name}`` (paper op 10).

    Partitions the input on the group-by variables; outputs one tuple per
    partition with the group variables plus ``$name`` bound to the
    partition (a nested set of binding lists).
    """

    opname = "gBy"

    def __init__(self, group_vars, out_var, input_plan):
        self.group_vars = tuple(group_vars)
        self.out_var = out_var
        self.input = input_plan

    @property
    def children(self):
        return (self.input,)

    def with_children(self, new_children):
        (inp,) = new_children
        return GroupBy(self.group_vars, self.out_var, inp)

    def local_defined_vars(self):
        return frozenset([self.out_var])

    def used_vars(self):
        return frozenset(self.group_vars)

    def rename_local(self, mapping):
        return GroupBy(
            tuple(mapping.get(v, v) for v in self.group_vars),
            mapping.get(self.out_var, self.out_var),
            self.input,
        )

    def signature(self):
        return (self.opname, self.group_vars, self.out_var)


class Apply(Operator):
    """``apply_{p, $inp -> $l}`` (paper op 11): run a nested plan.

    For each input tuple, evaluates plan ``p`` on the set bound to
    ``inp_var`` (reaching ``p`` through its ``nestedSrc`` leaf) and binds
    the result to ``out_var``.  ``inp_var`` may be ``None`` for nested
    plans that do not depend on the current tuple.
    """

    opname = "apply"

    def __init__(self, plan, inp_var, out_var, input_plan):
        self.plan = plan
        self.inp_var = inp_var
        self.out_var = out_var
        self.input = input_plan

    @property
    def children(self):
        return (self.input,)

    @property
    def nested_plans(self):
        return (self.plan,)

    def with_children(self, new_children):
        (inp,) = new_children
        return Apply(self.plan, self.inp_var, self.out_var, inp)

    def with_nested_plan(self, new_plan):
        return Apply(new_plan, self.inp_var, self.out_var, self.input)

    def local_defined_vars(self):
        return frozenset([self.out_var])

    def used_vars(self):
        if self.inp_var is None:
            return frozenset()
        return frozenset([self.inp_var])

    def rename_local(self, mapping):
        # The nested plan has its own scope *except* for its nestedSrc
        # leaf variable, which names the outer binding; deep renaming in
        # plan.rename_vars handles the recursion.
        return Apply(
            self.plan,
            mapping.get(self.inp_var, self.inp_var)
            if self.inp_var is not None
            else None,
            mapping.get(self.out_var, self.out_var),
            self.input,
        )

    def signature(self):
        return (self.opname, self.inp_var, self.out_var)


class NestedSrc(Operator):
    """``nestedSrc_{$x}`` (paper op 12): placeholder leaf of nested plans.

    Evaluates to the set of binding lists bound to ``$x`` in the current
    tuple of the enclosing ``apply``.
    """

    opname = "nSrc"

    def __init__(self, var):
        self.var = var

    def used_vars(self):
        return frozenset([self.var])

    def rename_local(self, mapping):
        return NestedSrc(mapping.get(self.var, self.var))

    def signature(self):
        return (self.opname, self.var)


class RQVar:
    """One entry of a ``rQ`` operator's map ``m``.

    Describes how a variable's value is assembled from SQL result
    columns.  ``kind`` selects the shape:

    * ``"element"`` — a whole tuple object: an element labeled ``label``
      (the exported element label of the source table) with one field
      child per ``(column position, field name)`` pair, its oid derived
      from the ``key_positions`` values (``&XYZ123``);
    * ``"field"`` — a single field element (``<id>XYZ</id>``), one
      column;
    * ``"leaf"`` — the bare value leaf (a path that ended in ``data()``).

    Positions are 0-based in code and printed 1-based like the paper.
    """

    __slots__ = ("var", "label", "columns", "key_positions", "kind")

    def __init__(self, var, label, columns, key_positions, kind="element"):
        if kind not in ("element", "field", "leaf"):
            raise PlanError("unknown RQVar kind {!r}".format(kind))
        self.var = var
        self.label = label
        self.columns = tuple(columns)
        self.key_positions = tuple(key_positions)
        self.kind = kind

    def signature(self):
        return (
            self.var, self.label, self.columns, self.key_positions, self.kind
        )

    def __repr__(self):
        positions = ",".join(str(pos + 1) for pos, _ in self.columns)
        return "{}={{{}}}".format(self.var, positions)


class RelQuery(Operator):
    """``rQ_{s, q, m}`` (paper op 13): relational source access.

    A leaf that sends SQL ``sql`` to server ``server`` and exports binding
    tuples assembled per the map ``varmap`` (a list of :class:`RQVar`).
    "The relational query operator is also responsible for creating the
    nodes corresponding to the tuple objects."
    """

    opname = "rQ"

    def __init__(self, server, sql, varmap, order_vars=()):
        self.server = server
        self.sql = sql
        self.varmap = tuple(varmap)
        #: variables whose bound elements arrive sorted (the SQL carries a
        #: matching ORDER BY, as in Fig. 22) — lets the engine pick the
        #: presorted stateless gBy of Table 1.
        self.order_vars = tuple(order_vars)

    def local_defined_vars(self):
        return frozenset(entry.var for entry in self.varmap)

    def rename_local(self, mapping):
        renamed = [
            RQVar(
                mapping.get(e.var, e.var), e.label, e.columns, e.key_positions
            )
            for e in self.varmap
        ]
        return RelQuery(
            self.server,
            self.sql,
            renamed,
            tuple(mapping.get(v, v) for v in self.order_vars),
        )

    def signature(self):
        return (
            self.opname,
            self.server,
            self.sql,
            tuple(e.signature() for e in self.varmap),
        )


class Empty(Operator):
    """The empty set of binding tuples over a known variable set.

    Not one of the paper's 14 operators: it is the ``∅`` that rule 4 of
    Table 2 rewrites provably-unsatisfiable path conditions into, and it
    propagates upward through the emptiness rules of the rewriter.
    """

    opname = "empty"

    def __init__(self, variables=()):
        self.variables = tuple(sorted(variables))

    def local_defined_vars(self):
        return frozenset(self.variables)

    def rename_local(self, mapping):
        return Empty(mapping.get(v, v) for v in self.variables)

    def signature(self):
        return (self.opname, self.variables)


class OrderBy(Operator):
    """``orderBy_{[$V1, ..., $Vm]}`` (paper op 14).

    Sorts input tuples by the *ids* of the bound nodes — "XMAS does not
    have currently an order-by that is based on actual values".
    """

    opname = "orderBy"

    def __init__(self, variables, input_plan):
        self.variables = tuple(variables)
        self.input = input_plan

    @property
    def children(self):
        return (self.input,)

    def with_children(self, new_children):
        (inp,) = new_children
        return OrderBy(self.variables, inp)

    def used_vars(self):
        return frozenset(self.variables)

    def rename_local(self, mapping):
        return OrderBy(
            tuple(mapping.get(v, v) for v in self.variables), self.input
        )

    def signature(self):
        return (self.opname, self.variables)
