"""Values a variable may be bound to, and skolem object ids.

The paper (Section 3): "Each value can either be a single element, a list
of elements or a set of binding lists."  Single elements are
:class:`repro.xmltree.Node`; lists are :class:`VList`; nested sets are
:class:`repro.algebra.bindings.BindingSet`.

Constructed elements (``crElt``) get a :class:`Skolem` oid ``f(~g)`` over
the grouping variables — "the constructed id's include all information
necessary for tracing the ancestry of an object", which is what
decontextualization (Section 5) decodes.
"""

from __future__ import annotations

from repro.errors import MixError
from repro.xmltree.tree import Node


class VList:
    """An ordered list of values (elements or nested sets).

    ``cat`` produces these; ``crElt`` consumes one as its child list; a
    ``tD`` plan nested under ``apply`` binds one.

    Like :class:`~repro.xmltree.tree.Node`, a VList may carry a
    ``lazy_tail`` iterator so the lazy engine can bind list values whose
    items are produced only as navigation demands; :meth:`item` forces
    only the requested prefix, ``items`` forces everything.
    """

    __slots__ = ("_items", "_tail")

    def __init__(self, items=(), lazy_tail=None):
        self._items = list(items)
        self._tail = lazy_tail

    def _force(self, count):
        while self._tail is not None and (
            count is None or len(self._items) < count
        ):
            try:
                self._items.append(next(self._tail))
            except StopIteration:
                self._tail = None

    @property
    def items(self):
        self._force(None)
        return self._items

    def item(self, index):
        """The ``index``-th item or ``None`` — forces only that prefix."""
        if index < 0:
            return None
        self._force(index + 1)
        if index < len(self._items):
            return self._items[index]
        return None

    def __len__(self):
        self._force(None)
        return len(self._items)

    def __iter__(self):
        index = 0
        while True:
            value = self.item(index)
            if value is None:
                return
            yield value
            index += 1

    def __getitem__(self, index):
        return self.items[index]

    def concat(self, other):
        return VList(self.items + list(other.items))

    def lazy_concat(self, other):
        """Concatenation without forcing either operand."""

        def tail():
            for value in self:
                yield value
            for value in other:
                yield value

        return VList((), lazy_tail=tail())

    def __repr__(self):
        if self._tail is not None:
            return "VList({}+ items, lazy)".format(len(self._items))
        return "VList({})".format(self._items)

    def __eq__(self, other):
        return isinstance(other, VList) and values_equal_list(
            self.items, other.items
        )


class Skolem:
    """A skolem object id ``(var, f(args...))``.

    The paper's Fig. 7 prints constructed ids as ``&($V, f(&XYZ123))``:
    the *variable* the element was bound to before ``tD`` plus the skolem
    function applied to the key values of the grouping variables.  Both
    parts are needed to issue a query from the node later (Section 5).
    """

    __slots__ = ("var", "fn", "args", "arg_vars")

    def __init__(self, var, fn, args, arg_vars=()):
        self.var = var
        self.fn = fn
        self.args = tuple(args)
        self.arg_vars = tuple(arg_vars)

    def fixed_bindings(self):
        """``{group var: key value}`` — the context this id pins down.

        This is the Section-5 information "about the values of the
        group-by attributes associated with the nodes that enclose the
        given node".
        """
        return dict(zip(self.arg_vars, self.args))

    def __repr__(self):
        rendered_args = ",".join(str(a) for a in self.args)
        return "&({},{}({}))".format(self.var, self.fn, rendered_args)

    def __eq__(self, other):
        return (
            isinstance(other, Skolem)
            and self.var == other.var
            and self.fn == other.fn
            and self.args == other.args
        )

    def __hash__(self):
        return hash((self.var, self.fn, self.args))


def value_kind(value):
    """One of ``"element"``, ``"list"``, ``"set"`` — the paper's three
    value kinds (raises on anything else)."""
    from repro.algebra.bindings import BindingSet

    if isinstance(value, Node):
        return "element"
    if isinstance(value, VList):
        return "list"
    if isinstance(value, BindingSet):
        return "set"
    raise MixError("not a XMAS value: {!r}".format(value))


def value_key(value):
    """A hashable identity for a value, used for grouping and duplicate
    elimination.

    Elements group by their oid (the paper: tuples "agree on the values of
    the variables" — for wrapper elements oids *are* the key values, and
    for constructed elements they are skolems of keys).  Lists and nested
    sets group recursively.
    """
    from repro.algebra.bindings import BindingSet

    if isinstance(value, Node):
        return ("e", _node_identity(value))
    if isinstance(value, VList):
        return ("l", tuple(value_key(v) for v in value.items))
    if isinstance(value, BindingSet):
        return (
            "s",
            tuple(tuple(sorted(
                (var, value_key(val)) for var, val in t.items()
            )) for t in value),
        )
    raise MixError("not a XMAS value: {!r}".format(value))


def _node_identity(node):
    oid = node.oid
    if isinstance(oid, Skolem):
        return ("sk", oid.var, oid.fn, oid.args)
    if node.is_leaf:
        # Leaves compare by value: two fetches of the same relational
        # field must group together even under surrogate oids.
        return ("leaf", node.label)
    return ("oid", oid)


def values_equal(a, b):
    """Deep structural equality of two values (oid-insensitive for plain
    nodes, skolem-sensitive for constructed ones)."""
    from repro.algebra.bindings import BindingSet
    from repro.xmltree.tree import deep_equals

    if isinstance(a, Node) and isinstance(b, Node):
        return deep_equals(a, b)
    if isinstance(a, VList) and isinstance(b, VList):
        return values_equal_list(a.items, b.items)
    if isinstance(a, BindingSet) and isinstance(b, BindingSet):
        if len(a) != len(b):
            return False
        return all(ta.equals(tb) for ta, tb in zip(a, b))
    return False


def values_equal_list(items_a, items_b):
    if len(items_a) != len(items_b):
        return False
    return all(values_equal(x, y) for x, y in zip(items_a, items_b))
