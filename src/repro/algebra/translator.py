"""XQuery (Fig. 4 subset) to XMAS plans — the Section 3 translation.

The three clauses translate separately and compose:

* **FOR** — each ``$v IN document(d)/path`` contributes
  ``getD($z.path, $v)(mksrc(d, $z))``; each ``$v IN $u/path`` extends the
  expression that defines ``$u`` with ``getD($u.label(u).path, $v)``
  (paths include the start node's label, so the defining label of ``$u``
  is prepended — compare Fig. 11's ``getD($R.custRec.orderInfo, $S)``).
* **WHERE** — operand paths are materialized into fresh variables with
  ``getD``; ``var op const`` becomes ``select``; ``var op var`` becomes
  ``select`` within one expression or ``join`` across two; leftover
  expressions combine by cartesian product.
* **RETURN** — element creation is ``crElt``, content concatenation is
  ``cat``, group-by lists become ``gBy`` + ``apply`` over a nested plan
  (ending in ``tD``) for the content that varies within a group, and the
  whole query ends in ``tD``.

Group-by fidelity note: when an element's group-by list covers all free
variables of its content (the inner ``<OrderInfo>$O</OrderInfo>{$O}`` of
Fig. 3), grouping is pure duplicate elimination.  The paper's Fig. 6 plan
omits it (keys make duplicates impossible there); we do the same by
default and emit an explicit ``gBy`` when ``dedup_groups=True``.
"""

from __future__ import annotations

from repro.errors import TranslationError
from repro.xmltree.paths import Path, Step
from repro.algebra import operators as ops
from repro.algebra.conditions import Condition
from repro.algebra.plan import VarFactory
from repro.xquery import ast as q

_SKOLEM_NAMES = "fghijklmnopqrstuvwxyz"


class _Expr:
    """One entry of the translator's "current set": a plan plus the
    query variables it defines."""

    def __init__(self, plan, variables):
        self.plan = plan
        self.vars = set(variables)


class Translator:
    """Translates parsed queries into XMAS plans.

    Args:
        dedup_groups: emit an explicit ``gBy`` for group-by lists that
            only deduplicate (see module docstring).
    """

    def __init__(self, dedup_groups=False):
        self.dedup_groups = dedup_groups

    def translate(self, query, root_oid=None):
        """Translate ``query`` (a :class:`QueryExpr`) to a tD-rooted plan."""
        state = _TranslationState(query)
        exprs, var_label = self._translate_for(query, state)
        plan = self._translate_where(query, exprs, var_label, state)
        return self._translate_return(query, plan, var_label, state, root_oid)

    # -- FOR ---------------------------------------------------------------------

    def _translate_for(self, query, state):
        exprs = []
        var_label = {}
        for binding in query.for_bindings:
            operand = binding.operand
            if operand.path.is_empty():
                raise TranslationError(
                    "FOR binding {} needs a non-empty path".format(binding.var)
                )
            if isinstance(operand.root, q.DocRoot):
                src_var = state.vars.fresh("$")
                plan = ops.GetD(
                    src_var,
                    operand.path,
                    binding.var,
                    ops.MkSrc(operand.root.doc_id, src_var),
                )
                exprs.append(_Expr(plan, {src_var, binding.var}))
            else:
                root_var = operand.root.var
                expr = _expr_defining(exprs, root_var, binding.var)
                full_path = _prefix_with_label(
                    operand.path, var_label.get(root_var)
                )
                expr.plan = ops.GetD(
                    root_var, full_path, binding.var, expr.plan
                )
                expr.vars.add(binding.var)
            var_label[binding.var] = _binding_label(operand.path)
        return exprs, var_label

    # -- WHERE --------------------------------------------------------------------

    def _translate_where(self, query, exprs, var_label, state):
        for comparison in query.conditions:
            left = self._resolve_operand(
                comparison.left, exprs, var_label, state
            )
            right = self._resolve_operand(
                comparison.right, exprs, var_label, state
            )
            self._apply_condition(comparison.op, left, right, exprs)
        # Combine any remaining expressions by cartesian product.
        while len(exprs) > 1:
            left = exprs.pop(0)
            right = exprs.pop(0)
            exprs.insert(
                0, _Expr(
                    ops.Join((), left.plan, right.plan),
                    left.vars | right.vars,
                ),
            )
        if not exprs:
            raise TranslationError("query has no FOR bindings")
        return exprs[0].plan

    def _resolve_operand(self, operand, exprs, var_label, state):
        """Resolve a condition operand to ('const', v) or ('var', $v)."""
        if isinstance(operand, q.Literal):
            return ("const", operand.value)
        if operand.is_bare_var:
            var = operand.root.var
            _expr_defining(exprs, var, "<condition>")
            return ("var", var)
        if isinstance(operand.root, q.VarRoot):
            root_var = operand.root.var
            expr = _expr_defining(exprs, root_var, "<condition>")
            cond_var = state.vars.fresh("$")
            full_path = _prefix_with_label(
                operand.path, var_label.get(root_var)
            )
            expr.plan = ops.GetD(root_var, full_path, cond_var, expr.plan)
            expr.vars.add(cond_var)
            return ("var", cond_var)
        # Document-rooted condition operand: a new source expression.
        src_var = state.vars.fresh("$")
        cond_var = state.vars.fresh("$")
        plan = ops.GetD(
            src_var,
            operand.path,
            cond_var,
            ops.MkSrc(operand.root.doc_id, src_var),
        )
        exprs.append(_Expr(plan, {src_var, cond_var}))
        return ("var", cond_var)

    def _apply_condition(self, op, left, right, exprs):
        lkind, lval = left
        rkind, rval = right
        if lkind == "const" and rkind == "const":
            raise TranslationError("constant-only conditions are not useful")
        if lkind == "const":
            # Normalise to var-op-const.
            condition = Condition.var_const(rval, _flip(op), lval)
            expr = _expr_defining(exprs, rval, "<condition>")
            expr.plan = ops.Select(condition, expr.plan)
            return
        if rkind == "const":
            condition = Condition.var_const(lval, op, rval)
            expr = _expr_defining(exprs, lval, "<condition>")
            expr.plan = ops.Select(condition, expr.plan)
            return
        left_expr = _expr_defining(exprs, lval, "<condition>")
        right_expr = _expr_defining(exprs, rval, "<condition>")
        condition = Condition.var_var(lval, op, rval)
        if left_expr is right_expr:
            left_expr.plan = ops.Select(condition, left_expr.plan)
            return
        exprs.remove(left_expr)
        exprs.remove(right_expr)
        exprs.append(
            _Expr(
                ops.Join((condition,), left_expr.plan, right_expr.plan),
                left_expr.vars | right_expr.vars,
            )
        )

    # -- RETURN --------------------------------------------------------------------

    def _translate_return(self, query, plan, var_label, state, root_oid):
        ret = query.ret
        if isinstance(ret, q.VarRef):
            return ops.TD(ret.var, plan, root_oid)
        out_plan, out_var, __ = self._build_element(ret, plan, state)
        return ops.TD(out_var, out_plan, root_oid)

    def _build_element(self, elem, plan, state):
        """Build one element per (group of) input tuple(s).

        Returns ``(plan, out_var, is_single)`` where ``out_var`` is bound
        to the constructed element in every output tuple.
        """
        fn = state.next_skolem()
        if elem.group_by:
            plan, out_var = self._build_grouped(elem, plan, state, fn)
        else:
            plan, out_var = self._build_ungrouped(elem, plan, state, fn)
        return plan, out_var, True

    def _build_ungrouped(self, elem, plan, state, fn):
        parts = []
        for content in elem.contents:
            plan, var, single = self._build_content(content, plan, state)
            parts.append((var, single))
        plan, ch_var, ch_is_list = self._fold_cat(parts, plan, state)
        skolem_args = sorted(elem.free_vars())
        out_var = state.vars.fresh("$V")
        plan = ops.CrElt(
            elem.label, fn, skolem_args, ch_var, ch_is_list, out_var, plan
        )
        return plan, out_var

    def _build_grouped(self, elem, plan, state, fn):
        group_vars = list(elem.group_by)
        runs = _split_contents(elem.contents, set(group_vars))
        has_varying = any(kind == "varying" for kind, __ in runs)
        part_var = None
        if has_varying or self.dedup_groups:
            part_var = state.vars.fresh("$X")
            plan = ops.GroupBy(group_vars, part_var, plan)
        parts = []
        for kind, contents in runs:
            if kind == "const":
                for content in contents:
                    plan, var, single = self._build_content(
                        content, plan, state
                    )
                    parts.append((var, single))
            else:
                plan, list_var = self._build_varying_run(
                    contents, part_var, plan, state
                )
                parts.append((list_var, False))
        plan, ch_var, ch_is_list = self._fold_cat(parts, plan, state)
        out_var = state.vars.fresh("$V")
        plan = ops.CrElt(
            elem.label, fn, group_vars, ch_var, ch_is_list, out_var, plan
        )
        return plan, out_var

    def _build_varying_run(self, contents, part_var, plan, state):
        """One ``apply`` computing a maximal run of group-varying content."""
        nested_plan = ops.NestedSrc(part_var)
        nested_parts = []
        for content in contents:
            nested_plan, var, single = self._build_content(
                content, nested_plan, state
            )
            nested_parts.append((var, single))
        if len(nested_parts) == 1:
            td_var = nested_parts[0][0]
        else:
            nested_plan, td_var, __ = self._fold_cat(
                nested_parts, nested_plan, state
            )
        nested_plan = ops.TD(td_var, nested_plan)
        list_var = state.vars.fresh("$Z")
        plan = ops.Apply(nested_plan, part_var, list_var, plan)
        return plan, list_var

    def _build_content(self, content, plan, state):
        """Returns ``(plan, var, is_single)`` for one content item."""
        if isinstance(content, q.VarRef):
            return plan, content.var, True
        if isinstance(content, q.ElemExpr):
            plan, var, single = self._build_element(content, plan, state)
            return plan, var, single
        if isinstance(content, q.QueryExpr):
            free = content.free_vars()
            if free:
                raise TranslationError(
                    "correlated nested queries are not supported "
                    "(free variables {})".format(sorted(free))
                )
            nested_plan = self.translate(content)
            var = state.vars.fresh("$Q")
            plan = ops.Apply(nested_plan, None, var, plan)
            return plan, var, False
        raise TranslationError(
            "unsupported RETURN content {!r}".format(content)
        )

    def _fold_cat(self, parts, plan, state):
        """Concatenate content parts in document order with ``cat``."""
        if not parts:
            raise TranslationError("element has no content")
        if len(parts) == 1:
            var, single = parts[0]
            return plan, var, single
        acc_var, acc_single = parts[0]
        for var, single in parts[1:]:
            out = state.vars.fresh("$W")
            plan = ops.Cat(acc_var, acc_single, var, single, out, plan)
            acc_var, acc_single = out, False
        return plan, acc_var, acc_single


class _TranslationState:
    def __init__(self, query):
        self.vars = VarFactory()
        self.vars.reserve(_query_vars(query))
        self._skolem_index = 0

    def next_skolem(self):
        index = self._skolem_index
        self._skolem_index += 1
        if index < len(_SKOLEM_NAMES):
            return _SKOLEM_NAMES[index]
        return "f{}".format(index)


def _query_vars(query):
    out = set()
    for binding in query.for_bindings:
        out.add(binding.var)
        if isinstance(binding.operand.root, q.VarRoot):
            out.add(binding.operand.root.var)
    for comparison in query.conditions:
        for operand in (comparison.left, comparison.right):
            if isinstance(operand, q.PathOperand) and isinstance(
                operand.root, q.VarRoot
            ):
                out.add(operand.root.var)
    out |= _ret_vars(query.ret)
    return out


def _ret_vars(ret):
    if isinstance(ret, q.VarRef):
        return {ret.var}
    if isinstance(ret, q.ElemExpr):
        out = set(ret.group_by)
        for content in ret.contents:
            out |= _ret_vars(content)
        return out
    if isinstance(ret, q.QueryExpr):
        return _query_vars(ret)
    return set()


def _expr_defining(exprs, var, context):
    for expr in exprs:
        if var in expr.vars:
            return expr
    raise TranslationError(
        "variable {} used in {} is not bound by FOR".format(var, context)
    )


def _prefix_with_label(path, label):
    if label is None:
        # The defining path ended in a wildcard (or data()): fall back to
        # a wildcard start step so the path still includes the start node.
        return Path((Step(Step.WILD),) + path.steps)
    return path.prepend(label)


def _binding_label(path):
    """The label a FOR-bound variable's nodes carry (last label step)."""
    steps = path.without_data().steps
    if steps and steps[-1].kind == Step.LABEL:
        return steps[-1].label
    return None


def _split_contents(contents, group_vars):
    """Split content into maximal runs of const / group-varying items."""
    runs = []
    for content in contents:
        varying = bool(_content_free_vars(content) - group_vars)
        kind = "varying" if varying else "const"
        if runs and runs[-1][0] == kind == "varying":
            runs[-1][1].append(content)
        else:
            runs.append((kind, [content]))
    return runs


def _content_free_vars(content):
    if isinstance(content, q.QueryExpr):
        return content.free_vars()
    return content.free_vars()


def _flip(op):
    return {"=": "=", "!=": "!=", "<": ">", "<=": ">=", ">": "<", ">=": "<="}[op]


def translate_query(query, root_oid=None, dedup_groups=False):
    """Convenience: translate a parsed query (or query text) to a plan."""
    if isinstance(query, str):
        from repro.xquery.parser import parse_xquery

        query = parse_xquery(query)
    return Translator(dedup_groups=dedup_groups).translate(
        query, root_oid=root_oid
    )
