"""Plan-level utilities: traversal, schemas, renaming, equality, validation."""

from __future__ import annotations

import hashlib
import itertools
import re

from repro.errors import PlanError
from repro.algebra import operators as ops


def iter_operators(plan, include_nested=True):
    """Pre-order iterator over all operators of a plan.

    With ``include_nested`` the nested plans of ``apply`` operators are
    visited too.
    """
    stack = [plan]
    while stack:
        node = stack.pop()
        yield node
        stack.extend(reversed(node.children))
        if include_nested and isinstance(node, ops.Apply):
            stack.append(node.plan)


def defined_vars(plan):
    """The variables bound in the plan's output tuples.

    Returns ``None`` when the set cannot be determined statically (a plan
    rooted at ``nestedSrc``, whose schema comes from the enclosing apply
    at run time).  A plan rooted at ``tD`` defines no variables — its
    output is a tree.
    """
    if isinstance(plan, ops.MkSrc):
        return frozenset([plan.var])
    if isinstance(plan, ops.RelQuery):
        return plan.local_defined_vars()
    if isinstance(plan, ops.NestedSrc):
        return None
    if isinstance(plan, ops.Empty):
        return frozenset(plan.variables)
    if isinstance(plan, ops.TD):
        return frozenset()
    if isinstance(plan, ops.Project):
        return frozenset(plan.variables)
    if isinstance(plan, ops.Join):
        left = defined_vars(plan.left)
        right = defined_vars(plan.right)
        if left is None or right is None:
            return None
        return left | right
    if isinstance(plan, ops.SemiJoin):
        kept = plan.left if plan.keep == "left" else plan.right
        return defined_vars(kept)
    if isinstance(plan, ops.GroupBy):
        return frozenset(plan.group_vars) | frozenset([plan.out_var])
    if isinstance(plan, (ops.Select, ops.OrderBy)):
        return defined_vars(plan.input)
    # GetD, CrElt, Cat, Apply: input vars plus locally defined ones.
    base = defined_vars(plan.input)
    if base is None:
        return None
    return base | plan.local_defined_vars()


def all_vars(plan):
    """Every variable mentioned anywhere in the plan (incl. nested)."""
    seen = set()
    for node in iter_operators(plan):
        seen |= node.local_defined_vars()
        seen |= node.used_vars()
        if isinstance(node, ops.MkSrc):
            seen.add(node.var)
    return seen


class VarFactory:
    """Fresh-variable generator avoiding every name used in given plans."""

    def __init__(self, *plans):
        self._taken = set()
        for plan in plans:
            if plan is not None:
                self._taken |= all_vars(plan)
        self._counter = itertools.count(1)

    def reserve(self, names):
        self._taken |= set(names)

    def fresh(self, stem="$v"):
        """A variable not used in any of the registered plans."""
        while True:
            candidate = "{}{}".format(stem, next(self._counter))
            if candidate not in self._taken:
                self._taken.add(candidate)
                return candidate


def rename_vars(plan, mapping):
    """A deep copy of ``plan`` with variables substituted per ``mapping``.

    Nested ``apply`` plans share the namespace of the partition tuples
    they run over (the paper's Fig. 6 nested plan mentions the outer
    ``$O``), so the mapping is applied uniformly everywhere.
    """
    renamed_children = tuple(rename_vars(c, mapping) for c in plan.children)
    node = plan.with_children(renamed_children) if plan.children else plan
    node = node.rename_local(mapping)
    if isinstance(node, ops.Apply):
        node = node.with_nested_plan(rename_vars(plan.plan, mapping))
    return node


def clone_plan(plan):
    """A deep structural copy (identity renaming)."""
    return rename_vars(plan, {})


def plan_equal(a, b):
    """Structural plan equality (signatures and shape, oids ignored)."""
    if a.signature() != b.signature():
        return False
    if len(a.children) != len(b.children):
        return False
    if isinstance(a, ops.Apply):
        if not plan_equal(a.plan, b.plan):
            return False
    return all(plan_equal(x, y) for x, y in zip(a.children, b.children))


def validate_plan(plan, available_sources=None):
    """Check static well-formedness; raises :class:`PlanError`.

    Verifies that every operator's used variables are defined by its
    input(s) and that join inputs have disjoint variable sets.  Plans
    involving ``nestedSrc`` are checked as far as statically possible.
    """
    _validate(plan, available_sources)


def _validate(plan, sources):
    for child in plan.children:
        _validate(child, sources)
    if isinstance(plan, ops.Apply):
        _validate(plan.plan, sources)
    if isinstance(plan, ops.MkSrc) and sources is not None:
        if plan.source not in sources:
            raise PlanError("unknown source {!r}".format(plan.source))

    if isinstance(plan, ops.Join):
        left = defined_vars(plan.left)
        right = defined_vars(plan.right)
        if left is not None and right is not None and (left & right):
            raise PlanError(
                "join inputs share variables {}".format(sorted(left & right))
            )
        _check_used(plan, None if left is None or right is None
                    else left | right)
        return
    if isinstance(plan, ops.SemiJoin):
        left = defined_vars(plan.left)
        right = defined_vars(plan.right)
        if left is None or right is None:
            return
        _check_used(plan, left | right)
        return
    if plan.children:
        _check_used(plan, defined_vars(plan.children[0]))


def _check_used(plan, available):
    if available is None:
        return
    missing = plan.used_vars() - available
    if missing:
        raise PlanError(
            "{} uses unbound variables {} (available: {})".format(
                type(plan).__name__, sorted(missing), sorted(available)
            )
        )


def find_operators(plan, op_type, include_nested=True):
    """All operators of a given type, in pre-order."""
    return [
        node
        for node in iter_operators(plan, include_nested)
        if isinstance(node, op_type)
    ]


def replace_operator(plan, target, replacement):
    """A copy of ``plan`` with the subtree ``target`` (matched by object
    identity) replaced by ``replacement``."""
    if plan is target:
        return replacement
    new_children = tuple(
        replace_operator(c, target, replacement) for c in plan.children
    )
    node = plan
    if any(n is not o for n, o in zip(new_children, plan.children)):
        node = plan.with_children(new_children)
    if isinstance(node, ops.Apply):
        new_nested = replace_operator(plan.plan, target, replacement)
        if new_nested is not plan.plan:
            node = node.with_nested_plan(new_nested)
    return node


_VAR_TOKEN = re.compile(r"\$[A-Za-z0-9_]+")


def canonical_plan_text(plan):
    """The rendered plan with variables alpha-renamed by first occurrence.

    Two plans that differ only in variable *names* (e.g. the same rule
    sequence replayed with a fresh :class:`VarFactory`) canonicalize to
    the same text; any structural difference survives.
    """
    from repro.algebra.printer import render_plan

    mapping = {}

    def canon(match):
        var = match.group(0)
        if var not in mapping:
            mapping[var] = "$g{}".format(len(mapping))
        return mapping[var]

    return _VAR_TOKEN.sub(canon, render_plan(plan))


def plan_fingerprint(plan):
    """A short stable fingerprint of a plan's structure.

    Alpha-renaming-invariant (see :func:`canonical_plan_text`), so the
    rewrite engine's cycle detector is not fooled by rules that mint
    fresh variable names on every application.
    """
    text = canonical_plan_text(plan)
    return hashlib.sha1(text.encode("utf-8")).hexdigest()[:12]
