"""The condition language of ``select`` and ``join``.

Conditions are ``$v op c`` or ``$v1 op $v2`` with ``op`` one of
``=, !=, <, <=, >, >=`` (paper Section 3, items 3 and 5).  A condition is
true for a tuple when the operand variables are bound to leaf nodes whose
values compare accordingly; we use XQuery ``data()`` atomization (a leaf,
or an element with a single leaf child), which subsumes the paper's
leaf-only rule — see :func:`repro.xmltree.tree.atomize`.

Two further comparison modes are required by Sections 5-6:

* ``oid`` — fix a variable to a specific object id (``$C = &XYZ123`` in
  Fig. 10, added during decontextualization);
* ``key`` — two variables are bound to *the same object* (equality of
  oids/keys rather than atomized values).  Rule 9 of Table 2 introduces
  joins whose condition is exactly this: the copied branch's group
  variable must denote the same element as the original's.
"""

from __future__ import annotations

from repro.errors import PlanError
from repro.relational.executor import compare
from repro.xmltree.tree import Node, atomize
from repro.algebra.values import Skolem, value_key

_OPS = ("=", "!=", "<", "<=", ">", ">=")
_FLIPPED = {"=": "=", "!=": "!=", "<": ">", "<=": ">=", ">": "<", ">=": "<="}

#: Comparison modes.
VALUE = "value"
OID = "oid"
KEY = "key"


class VarOperand:
    """A variable reference in a condition."""

    __slots__ = ("var",)

    def __init__(self, var):
        self.var = var

    def __repr__(self):
        return self.var

    def __eq__(self, other):
        return isinstance(other, VarOperand) and self.var == other.var

    def __hash__(self):
        return hash(("v", self.var))


class ConstOperand:
    """A constant (int/float/str, or an oid string in ``oid`` mode)."""

    __slots__ = ("value",)

    def __init__(self, value):
        self.value = value

    def __repr__(self):
        if isinstance(self.value, str):
            return '"{}"'.format(self.value)
        return str(self.value)

    def __eq__(self, other):
        return isinstance(other, ConstOperand) and self.value == other.value

    def __hash__(self):
        return hash(("c", self.value))


class Condition:
    """``left op right`` over variables and constants.

    Args:
        left, right: :class:`VarOperand` or :class:`ConstOperand`.
        op: one of ``=, !=, <, <=, >, >=``.
        mode: ``"value"`` (atomized-value comparison, the paper's
            default), ``"oid"`` (pin a variable to an object id), or
            ``"key"`` (two variables denote the same object).
    """

    __slots__ = ("left", "op", "right", "mode")

    def __init__(self, left, op, right, mode=VALUE):
        if op not in _OPS:
            raise PlanError("unknown comparison operator {!r}".format(op))
        if mode not in (VALUE, OID, KEY):
            raise PlanError("unknown condition mode {!r}".format(mode))
        if mode in (OID, KEY) and op not in ("=", "!="):
            raise PlanError("{} conditions support only = and !=".format(mode))
        self.left = left
        self.op = op
        self.right = right
        self.mode = mode

    # -- constructors ----------------------------------------------------------

    @classmethod
    def var_const(cls, var, op, value):
        return cls(VarOperand(var), op, ConstOperand(value))

    @classmethod
    def var_var(cls, left_var, op, right_var):
        return cls(VarOperand(left_var), op, VarOperand(right_var))

    @classmethod
    def oid_equals(cls, var, oid):
        """Pin ``var`` to the node with object id ``oid`` (Section 5)."""
        return cls(VarOperand(var), "=", ConstOperand(str(oid)), mode=OID)

    @classmethod
    def key_equals(cls, left_var, right_var):
        """``left_var`` and ``right_var`` denote the same object (rule 9)."""
        return cls(VarOperand(left_var), "=", VarOperand(right_var), mode=KEY)

    # -- inspection -------------------------------------------------------------

    def variables(self):
        out = set()
        for operand in (self.left, self.right):
            if isinstance(operand, VarOperand):
                out.add(operand.var)
        return out

    def is_var_const(self):
        return isinstance(self.left, VarOperand) and isinstance(
            self.right, ConstOperand
        )

    def is_var_var(self):
        return isinstance(self.left, VarOperand) and isinstance(
            self.right, VarOperand
        )

    def flipped(self):
        """The same condition with operands swapped (`$a < $b` -> `$b > $a`)."""
        return Condition(
            self.right, _FLIPPED[self.op], self.left, mode=self.mode
        )

    def rename(self, mapping):
        """The condition with variables substituted per ``mapping``."""

        def sub(operand):
            if isinstance(operand, VarOperand):
                return VarOperand(mapping.get(operand.var, operand.var))
            return operand

        return Condition(sub(self.left), self.op, sub(self.right), self.mode)

    # -- evaluation -------------------------------------------------------------

    def evaluate(self, binding_tuple, extra=None):
        """Truth of the condition on one tuple.

        ``extra`` optionally supplies a second tuple (join evaluation);
        variables are looked up in the first tuple, then the second.
        """

        def bound_value(operand):
            if binding_tuple.has(operand.var):
                return binding_tuple.get(operand.var)
            if extra is not None and extra.has(operand.var):
                return extra.get(operand.var)
            raise PlanError(
                "condition references unbound {}".format(operand.var)
            )

        if self.mode == OID:
            node = bound_value(self.left)
            oid = node.oid if isinstance(node, Node) else None
            result = oid is not None and str(oid) == str(self.right.value)
            return result if self.op == "=" else not result

        if self.mode == KEY:
            left = bound_value(self.left)
            right = bound_value(self.right)
            result = value_key(left) == value_key(right)
            return result if self.op == "=" else not result

        def atomized(operand):
            if isinstance(operand, ConstOperand):
                return operand.value
            bound = bound_value(operand)
            if isinstance(bound, Node):
                return atomize(bound)
            return None  # lists/sets never satisfy a value comparison

        return compare(atomized(self.left), self.op, atomized(self.right))

    # -- identity ---------------------------------------------------------------

    def __eq__(self, other):
        return (
            isinstance(other, Condition)
            and self.left == other.left
            and self.op == other.op
            and self.right == other.right
            and self.mode == other.mode
        )

    def __hash__(self):
        return hash((self.left, self.op, self.right, self.mode))

    def __repr__(self):
        if self.mode == KEY:
            return "{!r} == {!r}".format(self.left, self.right)
        if self.mode == OID:
            return "{!r} = {}".format(self.left, self.right.value)
        return "{!r} {} {!r}".format(self.left, self.op, self.right)


def skolem_arg_of(value):
    """The key a value contributes to a skolem id.

    For wrapper elements the oid *is* the key (``&XYZ123``); for leaves
    the value itself; for constructed elements their skolem id.
    """
    if isinstance(value, Node):
        if isinstance(value.oid, Skolem):
            return value.oid
        if value.is_leaf:
            return value.label
        return value.oid
    raise PlanError("skolem arguments must be elements, got {!r}".format(value))
