"""The running-example workload: customers and their orders.

The shape knobs map directly to the experiments' axes:

* ``n_customers`` / ``orders_per_customer`` — scale (E-LAZY, E-SQL);
* ``value_mode`` — how order values are assigned, which controls the
  selectivity of ``value > V`` predicates:

  - ``"ladder"``: customer's j-th order is worth ``value_step * (j+1)``
    (every customer qualifies for any threshold below the top rung);
  - ``"tiered"``: all of customer i's orders are worth
    ``value_step * ((i % tiers) + 1)`` (a threshold keeps an exact
    fraction of customers — the E-COMP sweep);
  - ``"uniform"``: independent uniform values in
    ``[value_step, value_step * tiers]``.

* ``city_skew`` — fraction of customers packed into ``City0`` (the
  leading block of the customer range); the rest round-robin over the
  ``n_cities`` as before.  A high skew makes ``addr`` a low-NDV hot
  column: joining through it first explodes the intermediate result,
  which is exactly the adversarial join order the E-OPT experiment
  feeds the optimizer.
"""

from __future__ import annotations

import random

from repro.errors import MixError
from repro.relational import Database
from repro.sources import RelationalWrapper
from repro.obs import Instrument

_VALUE_MODES = ("ladder", "tiered", "uniform")


class CustomersOrdersSpec:
    """Parameters of a customers/orders instance."""

    def __init__(self, n_customers=100, orders_per_customer=5,
                 value_mode="ladder", value_step=100, tiers=10,
                 n_cities=7, city_skew=None, seed=2002):
        if value_mode not in _VALUE_MODES:
            raise MixError(
                "value_mode must be one of {}".format(_VALUE_MODES)
            )
        if city_skew is not None and not 0.0 <= city_skew <= 1.0:
            raise MixError("city_skew must be in [0, 1] or None")
        self.n_customers = n_customers
        self.orders_per_customer = orders_per_customer
        self.value_mode = value_mode
        self.value_step = value_step
        self.tiers = tiers
        self.n_cities = n_cities
        self.city_skew = city_skew
        self.seed = seed

    @property
    def n_orders(self):
        return self.n_customers * self.orders_per_customer

    def city(self, customer_index):
        """The customer's city index (``city_skew`` packs the leading
        fraction of customers into the hot city 0)."""
        if (
            self.city_skew
            and customer_index < self.city_skew * self.n_customers
        ):
            return 0
        return customer_index % self.n_cities

    def order_value(self, customer_index, order_index, rng):
        if self.value_mode == "ladder":
            return self.value_step * (order_index + 1)
        if self.value_mode == "tiered":
            return self.value_step * ((customer_index % self.tiers) + 1)
        return rng.randrange(
            self.value_step, self.value_step * self.tiers + 1
        )

    def __repr__(self):
        return ("CustomersOrdersSpec({} customers x {} orders, {})"
                .format(self.n_customers, self.orders_per_customer,
                        self.value_mode))


class BuiltWorkload:
    """A generated instance: database, wrapper, stats, and the spec."""

    def __init__(self, spec, database, wrapper, stats):
        self.spec = spec
        self.database = database
        self.wrapper = wrapper
        self.stats = stats

    def mediator(self, **kwargs):
        """A fresh mediator over this workload's wrapper."""
        from repro.qdom import Mediator

        return Mediator(stats=self.stats, **kwargs).add_source(self.wrapper)


def build_customers_orders(spec=None, stats=None, **spec_kwargs):
    """Generate a customers/orders instance per ``spec``.

    Returns a :class:`BuiltWorkload`; documents are registered as
    ``root1`` (customer) and ``root2`` (order elements), matching the
    paper's running example.
    """
    if spec is None:
        spec = CustomersOrdersSpec(**spec_kwargs)
    elif spec_kwargs:
        raise MixError("pass either a spec or keyword knobs, not both")
    stats = stats or Instrument()
    rng = random.Random(spec.seed)
    db = Database("customers_orders", stats=stats)
    db.run(
        "CREATE TABLE customer (id TEXT, name TEXT, addr TEXT,"
        " PRIMARY KEY (id))"
    )
    db.run(
        "CREATE TABLE orders (orid INT, cid TEXT, value INT,"
        " PRIMARY KEY (orid))"
    )
    order_id = 0
    for i in range(spec.n_customers):
        db.run(
            "INSERT INTO customer VALUES ('C{:06d}', 'Name{}',"
            " 'City{}')".format(i, i, spec.city(i))
        )
        for j in range(spec.orders_per_customer):
            db.run(
                "INSERT INTO orders VALUES ({}, 'C{:06d}', {})".format(
                    order_id, i, spec.order_value(i, j, rng)
                )
            )
            order_id += 1
    wrapper = (
        RelationalWrapper(db)
        .register_document("root1", "customer")
        .register_document("root2", "orders", element_label="order")
    )
    return BuiltWorkload(spec, db, wrapper, stats)
