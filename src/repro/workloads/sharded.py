"""The customers/orders workload, horizontally partitioned.

Generates the *same logical rows* as
:func:`repro.workloads.customers.build_customers_orders` (same spec →
same answers), but places the ``orders`` table across k shard members —
hash- or range-partitioned on a chosen key — while ``customer``
replicates to every member so pushed joins stay member-local.  The
members sit behind one :class:`~repro.sources.shard.ShardedSource`
under the same server name (``s``) and documents (``root1``/``root2``)
as the unsharded builder, so any query, view, or mediator configuration
runs unchanged over either layout — which is exactly what the
sharded-vs-unsharded differential suite leans on.

Partition keys:

* ``"orid"`` (default) — range partitioning by order id reproduces the
  unsharded document order exactly under the ordered gather;
* ``"value"`` — range partitioning by order value gives each member a
  narrow ``[min, max]`` value band, the layout where per-shard
  ``ANALYZE`` statistics prune most of the fleet for a ``value``
  predicate (the E-SHARD pruning experiment);
* ``"cid"`` — hash partitioning by customer spreads each customer's
  orders over members.
"""

from __future__ import annotations

import random

from repro.errors import MixError
from repro.obs import Instrument
from repro.relational import Database
from repro.sources import (
    Partition,
    RelationalWrapper,
    ShardedSource,
    SqliteWrapper,
    hash_shard,
)
from repro.sources.shard import HASH, RANGE
from repro.workloads.customers import CustomersOrdersSpec

_ORDER_COLUMNS = ("orid", "cid", "value")


class ShardedWorkload:
    """A generated sharded instance.

    Attributes:
        spec: the :class:`CustomersOrdersSpec` shape.
        sharded: the :class:`ShardedSource` fronting the members.
        members: the member wrappers, in shard order (the *raw*
            wrappers — when ``member_wrapper`` decorated them, these
            are the decorated ones handed to the sharded source).
        stats: the shared instrument every member counts on.
    """

    def __init__(self, spec, sharded, members, stats):
        self.spec = spec
        self.sharded = sharded
        self.members = members
        self.stats = stats

    def mediator(self, **kwargs):
        """A fresh mediator over the sharded source."""
        from repro.qdom import Mediator

        return Mediator(stats=self.stats, **kwargs).add_source(
            self.sharded
        )


def build_sharded_customers_orders(shards=4, spec=None, stats=None,
                                   scheme=HASH, partition_key="cid",
                                   backend="memory", member_wrapper=None,
                                   gather=None, max_workers=None,
                                   **spec_kwargs):
    """Generate a k-sharded customers/orders instance.

    Args:
        shards: member count k.
        scheme: ``"hash"`` (placement by :func:`hash_shard` of the
            key) or ``"range"`` (orders sorted by the key and split
            into k contiguous runs, members in ascending key order).
        partition_key: ``orid``/``cid``/``value``.
        backend: ``"memory"`` (in-process :class:`Database` members) or
            ``"sqlite"`` (one ``sqlite3`` connection per member).
        member_wrapper: optional callable applied to the raw member
            list before the sharded source is built — e.g.
            ``lambda ms: shard_resilience(ms, on_error="degrade")``.
        gather/max_workers: forwarded to :class:`ShardedSource`.
    """
    if spec is None:
        spec = CustomersOrdersSpec(**spec_kwargs)
    elif spec_kwargs:
        raise MixError("pass either a spec or keyword knobs, not both")
    if shards < 1:
        raise MixError("shards must be >= 1")
    if partition_key not in _ORDER_COLUMNS:
        raise MixError(
            "partition_key must be one of {}".format(_ORDER_COLUMNS)
        )
    stats = stats or Instrument()

    customers, orders = _generate_rows(spec)
    placements = _place(orders, shards, scheme, partition_key)

    members = []
    for index in range(shards):
        member_orders = placements[index]
        if backend == "sqlite":
            members.append(
                _sqlite_member(index, customers, member_orders, stats)
            )
        elif backend == "memory":
            members.append(
                _memory_member(index, customers, member_orders, stats)
            )
        else:
            raise MixError(
                "backend must be 'memory' or 'sqlite', got {!r}".format(
                    backend
                )
            )
    if member_wrapper is not None:
        members = list(member_wrapper(members))
    sharded = ShardedSource(
        members,
        Partition("orders", partition_key, scheme),
        replicated=("customer",),
        server_name="s",
        obs=stats,
        gather=gather,
        max_workers=max_workers,
    )
    return ShardedWorkload(spec, sharded, members, stats)


def _generate_rows(spec):
    """The workload's logical rows, in the unsharded builder's order."""
    rng = random.Random(spec.seed)
    customers, orders = [], []
    order_id = 0
    for i in range(spec.n_customers):
        customers.append(
            ("C{:06d}".format(i), "Name{}".format(i),
             "City{}".format(spec.city(i)))
        )
        for j in range(spec.orders_per_customer):
            orders.append(
                (order_id, "C{:06d}".format(i),
                 spec.order_value(i, j, rng))
            )
            order_id += 1
    return customers, orders


def _place(orders, shards, scheme, partition_key):
    """Member index -> that member's order rows, in placement order."""
    key_pos = _ORDER_COLUMNS.index(partition_key)
    placements = {index: [] for index in range(shards)}
    if scheme == HASH:
        for row in orders:
            placements[hash_shard(row[key_pos], shards)].append(row)
        return placements
    if scheme != RANGE:
        raise MixError(
            "scheme must be 'hash' or 'range', got {!r}".format(scheme)
        )
    # Contiguous runs of the key-sorted rows, near-equal sizes; member
    # order == ascending key order, which the ordered gather preserves.
    ranked = sorted(orders, key=lambda row: row[key_pos])
    n = len(ranked)
    for index in range(shards):
        lo = index * n // shards
        hi = (index + 1) * n // shards
        placements[index] = ranked[lo:hi]
    return placements


def _memory_member(index, customers, member_orders, stats):
    db = Database("shard{}".format(index), stats=stats)
    db.run(
        "CREATE TABLE customer (id TEXT, name TEXT, addr TEXT,"
        " PRIMARY KEY (id))"
    )
    db.run(
        "CREATE TABLE orders (orid INT, cid TEXT, value INT,"
        " PRIMARY KEY (orid))"
    )
    for cid, name, addr in customers:
        db.run(
            "INSERT INTO customer VALUES ('{}', '{}', '{}')".format(
                cid, name, addr
            )
        )
    for orid, cid, value in member_orders:
        db.run(
            "INSERT INTO orders VALUES ({}, '{}', {})".format(
                orid, cid, value
            )
        )
    return (
        RelationalWrapper(db, server_name="s{}".format(index))
        .register_document("root1", "customer")
        .register_document("root2", "orders", element_label="order")
    )


def _sqlite_member(index, customers, member_orders, stats):
    wrapper = SqliteWrapper(
        server_name="s{}".format(index), stats=stats
    )
    wrapper.run(
        "CREATE TABLE customer (id TEXT PRIMARY KEY, name TEXT,"
        " addr TEXT)"
    )
    wrapper.run(
        "CREATE TABLE orders (orid INTEGER PRIMARY KEY, cid TEXT,"
        " value INTEGER)"
    )
    wrapper.run_many("INSERT INTO customer VALUES (?, ?, ?)", customers)
    wrapper.run_many(
        "INSERT INTO orders VALUES (?, ?, ?)", member_orders
    )
    wrapper.register_document("root1", "customer")
    wrapper.register_document("root2", "orders", element_label="order")
    return wrapper
