"""The Section-1 auction-site workload: cameras and matching lenses.

Mirrors the paper's motivating scenario so examples and tests can replay
the camera/lens discovery session at any scale.
"""

from __future__ import annotations

import random

from repro.relational import Database
from repro.sources import RelationalWrapper
from repro.obs import Instrument
from repro.workloads.customers import BuiltWorkload

RATINGS = ("low", "medium", "high")
REGIONS = ("SoCal", "NorCal", "EastCoast")


class AuctionSpec:
    """Parameters of an auction-catalog instance."""

    def __init__(self, n_cameras=200, min_lenses=2, max_lenses=7,
                 price_range=(80, 900), lens_price_range=(40, 600),
                 seed=2002):
        self.n_cameras = n_cameras
        self.min_lenses = min_lenses
        self.max_lenses = max_lenses
        self.price_range = price_range
        self.lens_price_range = lens_price_range
        self.seed = seed

    def __repr__(self):
        return "AuctionSpec({} cameras, {}-{} lenses each)".format(
            self.n_cameras, self.min_lenses, self.max_lenses
        )


def build_auction(spec=None, stats=None, **spec_kwargs):
    """Generate an auction catalog; documents ``cameras`` and ``lenses``."""
    if spec is None:
        spec = AuctionSpec(**spec_kwargs)
    stats = stats or Instrument()
    rng = random.Random(spec.seed)
    db = Database("auction", stats=stats)
    db.run(
        "CREATE TABLE camera (cid TEXT, model TEXT, price INT,"
        " afspeed REAL, rating TEXT, PRIMARY KEY (cid))"
    )
    db.run(
        "CREATE TABLE lens (lid TEXT, camera_cid TEXT, price INT,"
        " diameter INT, owner_region TEXT, PRIMARY KEY (lid))"
    )
    lens_id = 0
    for i in range(spec.n_cameras):
        db.run(
            "INSERT INTO camera VALUES ('cam{i:05d}', 'Model-{i}',"
            " {price}, {af}, '{rating}')".format(
                i=i,
                price=rng.randrange(*spec.price_range),
                af=round(rng.uniform(0.1, 1.2), 2),
                rating=rng.choice(RATINGS),
            )
        )
        for __ in range(rng.randrange(spec.min_lenses,
                                      spec.max_lenses + 1)):
            db.run(
                "INSERT INTO lens VALUES ('lens{l:06d}', 'cam{i:05d}',"
                " {price}, {diameter}, '{region}')".format(
                    l=lens_id,
                    i=i,
                    price=rng.randrange(*spec.lens_price_range),
                    diameter=rng.randrange(6, 18),
                    region=rng.choice(REGIONS),
                )
            )
            lens_id += 1
    wrapper = (
        RelationalWrapper(db)
        .register_document("cameras", "camera")
        .register_document("lenses", "lens")
    )
    return BuiltWorkload(spec, db, wrapper, stats)
