"""Synthetic workload generators for experiments and examples.

The paper evaluates MIX on customer/order-style relational sources and
an auction-site scenario; these builders produce scaled instances of
both with controllable shapes (orders per customer, value
distributions, join selectivities), already wrapped for the mediator.

All generators are deterministic given their ``seed``.
"""

from repro.workloads.customers import (
    CustomersOrdersSpec,
    build_customers_orders,
)
from repro.workloads.auction import AuctionSpec, build_auction
from repro.workloads.sharded import (
    ShardedWorkload,
    build_sharded_customers_orders,
)

__all__ = [
    "AuctionSpec",
    "CustomersOrdersSpec",
    "ShardedWorkload",
    "build_auction",
    "build_customers_orders",
    "build_sharded_customers_orders",
]
